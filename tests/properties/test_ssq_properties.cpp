// Property-style parameterized sweeps over the SSQ driver: invariants that
// must hold for every (weight ratio, queue depth, workload mix) cell.
#include <gtest/gtest.h>

#include "nvme/ssq_driver.hpp"
#include "ssd/device.hpp"
#include "workload/micro.hpp"

namespace src::nvme {
namespace {

using common::IoType;

struct SsqCell {
  std::uint32_t write_weight;
  std::uint32_t queue_depth;
  double write_iat_factor;  ///< write IAT = read IAT * factor
};

std::string cell_name(const ::testing::TestParamInfo<SsqCell>& info) {
  // Built incrementally: a chain of operator+ trips GCC 12's -O3
  // -Wrestrict false positive, and the hardened profile is -Werror.
  std::string name = "w";
  name += std::to_string(info.param.write_weight);
  name += "_qd";
  name += std::to_string(info.param.queue_depth);
  name += "_wf";
  name += std::to_string(static_cast<int>(info.param.write_iat_factor * 10));
  return name;
}

class SsqPropertyTest : public ::testing::TestWithParam<SsqCell> {
 protected:
  struct Run {
    std::uint64_t completed_reads = 0;
    std::uint64_t completed_writes = 0;
    std::uint64_t submitted = 0;
    std::uint32_t max_in_flight = 0;
    std::uint32_t max_in_flight_reads = 0;
    std::uint32_t max_in_flight_writes = 0;
    bool caps_respected = true;
    SsqStats ssq;
  };

  Run run_cell(const SsqCell& cell) {
    sim::Simulator sim;
    ssd::SsdConfig config = ssd::ssd_a();
    config.queue_depth = cell.queue_depth;
    ssd::SsdDevice device(sim, config, 1);
    SsqDriver driver(sim, device, 1, cell.write_weight);

    Run run;
    driver.set_completion_handler(
        [&](const IoRequest& request, const ssd::NvmeCompletion&) {
          (request.type == IoType::kRead ? run.completed_reads
                                         : run.completed_writes)++;
        });
    driver.set_dispatch_handler([&](const IoRequest&) {
      run.max_in_flight = std::max(run.max_in_flight, driver.in_flight() + 1);
      run.max_in_flight_reads =
          std::max(run.max_in_flight_reads, driver.in_flight_reads() + 1);
      run.max_in_flight_writes =
          std::max(run.max_in_flight_writes, driver.in_flight_writes() + 1);
    });

    workload::MicroParams params =
        workload::symmetric_micro(14.0, 28.0 * 1024, 1500);
    params.write.mean_iat_us = 14.0 * cell.write_iat_factor;
    params.write.count = static_cast<std::size_t>(1500 / cell.write_iat_factor);
    const auto trace = workload::generate_micro(params, 77);
    run.submitted = trace.size();
    for (const auto& rec : trace) {
      sim.schedule_at(rec.arrival, [&driver, rec, &sim] {
        IoRequest request;
        request.type = rec.type;
        request.lba = rec.lba;
        request.bytes = rec.bytes;
        request.arrival = sim.now();
        driver.submit(request);
      });
    }
    sim.run();
    run.ssq = driver.ssq_stats();
    return run;
  }
};

TEST_P(SsqPropertyTest, EveryRequestCompletesExactlyOnce) {
  const Run run = run_cell(GetParam());
  EXPECT_EQ(run.completed_reads + run.completed_writes, run.submitted);
}

TEST_P(SsqPropertyTest, QueueDepthNeverExceeded) {
  const Run run = run_cell(GetParam());
  EXPECT_LE(run.max_in_flight, GetParam().queue_depth);
}

TEST_P(SsqPropertyTest, EveryFetchComesFromExactlyOneQueue) {
  const Run run = run_cell(GetParam());
  EXPECT_EQ(run.ssq.fetched_from_rsq + run.ssq.fetched_from_wsq, run.submitted);
}

TEST_P(SsqPropertyTest, DeterministicAcrossRuns) {
  const Run a = run_cell(GetParam());
  const Run b = run_cell(GetParam());
  EXPECT_EQ(a.completed_reads, b.completed_reads);
  EXPECT_EQ(a.completed_writes, b.completed_writes);
  EXPECT_EQ(a.max_in_flight, b.max_in_flight);
}

INSTANTIATE_TEST_SUITE_P(
    WeightQdMixSweep, SsqPropertyTest,
    ::testing::Values(SsqCell{1, 16, 1.0}, SsqCell{1, 128, 1.0},
                      SsqCell{2, 64, 1.0}, SsqCell{4, 16, 2.0},
                      SsqCell{4, 128, 4.0}, SsqCell{8, 32, 1.0},
                      SsqCell{8, 128, 2.0}, SsqCell{16, 64, 4.0},
                      SsqCell{32, 256, 1.0}),
    cell_name);

// Monotonicity sweep: holding everything else fixed, a larger write weight
// never *increases* read completions over a fixed horizon under a
// saturated mixed workload.
class SsqMonotonicityTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SsqMonotonicityTest, ReadServiceNonIncreasingInWeight) {
  auto completed_reads = [](std::uint32_t w) {
    sim::Simulator sim;
    ssd::SsdDevice device(sim, ssd::ssd_a(), 1);
    SsqDriver driver(sim, device, 1, w);
    std::uint64_t reads = 0;
    driver.set_completion_handler(
        [&](const IoRequest& request, const ssd::NvmeCompletion&) {
          reads += request.type == IoType::kRead;
        });
    const auto trace = workload::generate_micro(
        workload::symmetric_micro(12.0, 32.0 * 1024, 4000), 5);
    for (const auto& rec : trace) {
      sim.schedule_at(rec.arrival, [&driver, rec, &sim] {
        IoRequest request;
        request.type = rec.type;
        request.lba = rec.lba;
        request.bytes = rec.bytes;
        request.arrival = sim.now();
        driver.submit(request);
      });
    }
    sim.run_until(40 * common::kMillisecond);
    return reads;
  };
  const std::uint32_t w = GetParam();
  // Allow 5% slack: token quantization can locally reorder service.
  EXPECT_LE(static_cast<double>(completed_reads(w * 2)),
            static_cast<double>(completed_reads(w)) * 1.05)
      << "w=" << w << " vs " << w * 2;
}

INSTANTIATE_TEST_SUITE_P(DoublingWeights, SsqMonotonicityTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

}  // namespace
}  // namespace src::nvme
