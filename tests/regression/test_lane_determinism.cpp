// Lane-count invariance: the sharded lane engine must produce bit-identical
// results no matter how many worker threads execute the shard decomposition
// (DESIGN.md §14). Two existing star presets and the pod-grammar preset run
// at lanes 1 / 2 / 4 and compare full snapshots as bytes — not tolerances —
// and the pod snapshot is additionally pinned against a committed golden so
// cross-version drift is caught even when all lane counts drift together.
#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario.hpp"

namespace src::regression {
namespace {

/// Run a star preset on the lane engine (lanes >= 1) and snapshot it.
/// Note lanes=0 (the classic single-kernel engine) is intentionally NOT in
/// the comparison set: the lane engine merges cross-shard deliveries at
/// window boundaries in (when, src, seq) order, which is a different —
/// equally deterministic — tie order than the classic global calendar's.
std::string star_snapshot_at(const std::string& preset, const core::Tpm* tpm,
                             std::size_t lanes) {
  scenario::ScenarioSpec spec = scenario::preset_spec(preset);
  spec.src.tpm.source = "none";  // the pointer below supplies the model
  spec.lanes = lanes;
  scenario::BuildOptions options;
  options.tpm = tpm;
  core::ExperimentConfig config = scenario::build(spec, options).config;

  obs::ObsConfig obs_config;
  obs_config.tracing = false;
  obs::Observatory observatory(obs_config);
  config.observatory = &observatory;
  const core::ExperimentResult result = core::run_experiment(config);
  return experiment_snapshot(result, observatory).dump(2);
}

TEST(LaneDeterminism, Fig7ReducedIsLaneCountInvariant) {
  const std::string one = star_snapshot_at("fig7-reduced", nullptr, 1);
  for (const std::size_t lanes : {2u, 4u}) {
    EXPECT_EQ(star_snapshot_at("fig7-reduced", nullptr, lanes), one)
        << "fig7-reduced drifted at lanes=" << lanes;
  }
}

TEST(LaneDeterminism, Table4ReducedIsLaneCountInvariant) {
  const core::Tpm* tpm = &shared_tpm();
  const std::string one = star_snapshot_at("table4-reduced", tpm, 1);
  for (const std::size_t lanes : {2u, 4u}) {
    EXPECT_EQ(star_snapshot_at("table4-reduced", tpm, lanes), one)
        << "table4-reduced drifted at lanes=" << lanes;
  }
}

TEST(LaneDeterminism, PodIncastSnapshotIsLaneCountInvariantAndPinned) {
  auto snapshot_at = [](std::size_t lanes) {
    scenario::ScenarioSpec spec = scenario::preset_spec("pod-incast-reduced");
    spec.lanes = lanes;
    return scenario::run_pod(spec).snapshot();
  };
  const std::string one = snapshot_at(1);
  for (const std::size_t lanes : {2u, 4u}) {
    EXPECT_EQ(snapshot_at(lanes), one)
        << "pod-incast-reduced drifted at lanes=" << lanes;
  }

  // Golden pin (text, integer-only): regenerate with SRC_UPDATE_GOLDEN=1.
  const std::string path =
      std::string(SRC_GOLDEN_DIR) + "/pod-incast-snapshot.txt";
  if (update_golden()) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write golden " << path;
    out << one;
    GTEST_SKIP() << "golden regenerated: " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden " << path
                  << " — regenerate with SRC_UPDATE_GOLDEN=1";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(one, buffer.str())
      << "pod-incast-reduced drifted from the committed golden. If the "
         "change is intentional, regenerate with SRC_UPDATE_GOLDEN=1.";
}

}  // namespace
}  // namespace src::regression
