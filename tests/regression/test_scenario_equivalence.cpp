// Golden equivalence between the two ways a preset can run: built directly
// from C++ (core::vdi_experiment & friends) versus serialized to a
// src-scenario-v1 manifest, re-parsed, and built from the parsed spec. The
// comparison is the full experiment snapshot compared as bytes — exact
// counters, not tolerances — so any field the serializer drops or the
// parser defaults differently shows up as a metric diff, and the manifest
// path also has to match the committed goldens.
#include <gtest/gtest.h>

#include "scenario.hpp"
#include "scenario/serialize.hpp"

namespace src::regression {
namespace {

obs::Json run_config_snapshot(core::ExperimentConfig config) {
  obs::ObsConfig obs_config;
  obs_config.tracing = false;
  obs::Observatory observatory(obs_config);
  config.observatory = &observatory;
  const core::ExperimentResult result = core::run_experiment(config);
  return experiment_snapshot(result, observatory);
}

/// Serialize -> parse -> build -> run, with `tpm` standing in for the
/// spec's tpm source (the regression suite trains exactly one model).
obs::Json run_via_json(const std::string& preset, const core::Tpm* tpm) {
  const scenario::ScenarioSpec spec = scenario::preset_spec(preset);
  const scenario::ScenarioSpec reparsed =
      scenario::parse_scenario(scenario::to_json_text(spec), preset + ".json");
  EXPECT_TRUE(reparsed == spec) << preset << ": spec drifted across JSON";
  scenario::BuildOptions options;
  options.tpm = tpm;
  return run_config_snapshot(scenario::build(reparsed, options).config);
}

TEST(ScenarioEquivalence, Fig7ManifestRunIsBitIdentical) {
  const obs::Json via_json = run_via_json("fig7-reduced", nullptr);
  EXPECT_EQ(via_json.dump(), run_config_snapshot(fig7_reduced()).dump());
  check_against_golden("fig7", via_json);
}

TEST(ScenarioEquivalence, Fig9SrcManifestRunIsBitIdentical) {
  const obs::Json via_json = run_via_json("fig9-reduced", &shared_tpm());
  EXPECT_EQ(via_json.dump(), run_config_snapshot(fig9_reduced()).dump());
}

TEST(ScenarioEquivalence, Table4ManifestRunIsBitIdentical) {
  const obs::Json via_json = run_via_json("table4-reduced", &shared_tpm());
  EXPECT_EQ(via_json.dump(), run_config_snapshot(table4_reduced()).dump());
  check_against_golden("table4", via_json);
}

}  // namespace
}  // namespace src::regression
