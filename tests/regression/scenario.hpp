// Shared machinery for the golden-metric regression suite: reduced-scale
// variants of the paper's evaluation presets, a small shared TPM, golden
// snapshot I/O (regenerate with SRC_UPDATE_GOLDEN=1), and a metric-level
// snapshot comparator.
//
// The reduced scenarios keep the presets' topology and calibration but
// shrink the request counts ~10x so the `regression` ctest label stays
// inside CI budgets; the goldens pin their exact seeded outcomes.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/presets.hpp"
#include "obs/obs.hpp"
#include "scenario/build.hpp"
#include "scenario/presets.hpp"

namespace src::regression {

/// One small Random Forest TPM shared by every SRC-mode scenario. Training
/// replays a 4-trace x 4-weight grid on the standalone rig (a few seconds);
/// function-local static so only suites that need it pay for it.
inline const core::Tpm& shared_tpm() {
  static const core::Tpm tpm = [] {
    core::TrainingGrid grid;
    std::uint64_t trace_seed = 11;
    for (const double iat_us : {10.0, 25.0}) {
      for (const double size_kb : {20.0, 44.0}) {
        grid.traces.push_back(workload::generate_micro(
            workload::symmetric_micro(iat_us, size_kb * 1024, 800),
            ++trace_seed));
      }
    }
    grid.weight_ratios = {1, 2, 4, 8};
    grid.seed = 11;
    const ml::Dataset data = core::collect_training_data(ssd::ssd_a(), grid);
    core::Tpm model;
    model.fit(data);
    return model;
  }();
  return tpm;
}

/// Build a named scenario preset with the shared (or no) TPM instead of the
/// spec's own tpm source, so the regression suite trains exactly one model.
inline core::ExperimentConfig reduced_preset(const std::string& name,
                                             const core::Tpm* tpm) {
  scenario::ScenarioSpec spec = scenario::preset_spec(name);
  spec.src.tpm.source = "none";  // the pointer below supplies the model
  scenario::BuildOptions options;
  options.tpm = tpm;
  return scenario::build(spec, options).config;
}

/// Reduced Fig. 7 scenario: VDI-like congestion, DCQCN-only.
inline core::ExperimentConfig fig7_reduced() {
  return reduced_preset("fig7-reduced", nullptr);
}

/// Reduced Fig. 9 scenario: the same VDI congestion with DCQCN-SRC.
inline core::ExperimentConfig fig9_reduced() {
  return reduced_preset("fig9-reduced", &shared_tpm());
}

/// Reduced Table IV scenario: 2-target / 1-initiator in-cast under SRC.
inline core::ExperimentConfig table4_reduced() {
  return reduced_preset("table4-reduced", &shared_tpm());
}

/// Golden-relevant metrics of one experiment run, as a JSON snapshot:
/// throughputs, pause count, final weight, completion counts, plus every
/// obs counter (the counters are compared exactly — any behavioural drift
/// in an instrumented path shows up as a named counter diff).
inline obs::Json experiment_snapshot(const core::ExperimentResult& result,
                                     const obs::Observatory& observatory) {
  obs::Json snap{obs::Json::Object{}};
  snap.set("read_gbps", obs::Json{result.read_rate.as_gbps()});
  snap.set("write_gbps", obs::Json{result.write_rate.as_gbps()});
  snap.set("aggregate_gbps", obs::Json{result.aggregate_rate().as_gbps()});
  snap.set("total_pauses", obs::Json{result.total_pauses});
  snap.set("total_cnps", obs::Json{result.total_cnps});
  snap.set("final_weight_ratio",
           obs::Json{static_cast<std::uint64_t>(result.final_weight_ratio())});
  snap.set("weight_adjustments",
           obs::Json{static_cast<std::uint64_t>(result.adjustments.size())});
  snap.set("reads_completed", obs::Json{result.reads_completed});
  snap.set("writes_completed", obs::Json{result.writes_completed});
  snap.set("completed", obs::Json{result.completed});
  snap.set("read_jain_index", obs::Json{result.read_fairness_index()});
  for (std::size_t i = 0; i < result.per_initiator_read_rate.size(); ++i) {
    snap.set("initiator" + std::to_string(i) + "_read_gbps",
             obs::Json{result.per_initiator_read_rate[i].as_gbps()});
  }
#if defined(SRC_OBS_DISABLE)
  (void)observatory;
  snap.set("counters", obs::Json{obs::Json::Object{}});
#else
  obs::Json metrics = observatory.metrics().snapshot();
  snap.set("counters", *metrics.find("counters"));
#endif
  return snap;
}

/// True when the run should (re)write goldens instead of comparing.
inline bool update_golden() {
  const char* flag = std::getenv("SRC_UPDATE_GOLDEN");
  return flag != nullptr && std::string(flag) != "0";
}

inline std::string golden_path(const std::string& name) {
  return std::string(SRC_GOLDEN_DIR) + "/" + name + ".json";
}

/// Compare `actual` against `golden`, metric by metric. Keys ending in
/// `_gbps` are rates and keys ending in `_index` are derived ratios; both
/// compare within `rate_tolerance` (relative — they are floating-point
/// functions of the timelines). Every other number is exact. Only keys
/// present in the golden are
/// checked, so adding new instrumentation later does not invalidate old
/// goldens. Returns one human-readable line per mismatch.
inline std::vector<std::string> compare_snapshots(const obs::Json& golden,
                                                  const obs::Json& actual,
                                                  double rate_tolerance = 0.005,
                                                  const std::string& prefix = "") {
  std::vector<std::string> diffs;
  for (const auto& [key, expected] : golden.as_object()) {
    const std::string label = prefix.empty() ? key : prefix + "." + key;
    const obs::Json* got = actual.find(key);
    if (got == nullptr) {
      diffs.push_back(label + ": missing from the run (golden has it)");
      continue;
    }
    if (expected.is_object()) {
      const auto nested =
          compare_snapshots(expected, *got, rate_tolerance, label);
      diffs.insert(diffs.end(), nested.begin(), nested.end());
      continue;
    }
    if (!expected.is_number()) continue;  // "completed" etc. compare below
    const double want = expected.as_double();
    const double have = got->as_double();
    const bool is_rate = (key.size() > 5 && key.ends_with("_gbps")) ||
                         (key.size() > 6 && key.ends_with("_index"));
    if (is_rate) {
      const double rel = want == 0.0 ? std::abs(have)
                                     : std::abs(have - want) / std::abs(want);
      if (rel > rate_tolerance) {
        std::ostringstream line;
        line << label << ": golden " << want << ", got " << have << " ("
             << rel * 100.0 << "% off, tolerance "
             << rate_tolerance * 100.0 << "%)";
        diffs.push_back(line.str());
      }
    } else if (want != have) {
      std::ostringstream line;
      line << label << ": golden " << want << ", got " << have;
      diffs.push_back(line.str());
    }
  }
  // Non-numeric scalars (booleans) compare exactly.
  for (const auto& [key, expected] : golden.as_object()) {
    if (expected.type() != obs::Json::Type::kBool) continue;
    const obs::Json* got = actual.find(key);
    if (got != nullptr && got->as_bool() != expected.as_bool()) {
      diffs.push_back((prefix.empty() ? key : prefix + "." + key) +
                      ": golden " + (expected.as_bool() ? "true" : "false") +
                      ", got " + (got->as_bool() ? "true" : "false"));
    }
  }
  return diffs;
}

/// Compare the snapshot against the named golden, or rewrite the golden
/// when SRC_UPDATE_GOLDEN is set. Fails the calling test with the full
/// metric-level diff on any mismatch.
inline void check_against_golden(const std::string& name,
                                 const obs::Json& snapshot) {
  const std::string path = golden_path(name);
  if (update_golden()) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write golden " << path;
    out << snapshot.dump(2) << '\n';
    GTEST_SKIP() << "golden regenerated: " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden " << path
                  << " — regenerate with SRC_UPDATE_GOLDEN=1";
  std::stringstream buffer;
  buffer << in.rdbuf();
  obs::Json golden = obs::Json::parse(buffer.str());
#if defined(SRC_OBS_DISABLE)
  // Obs-disabled builds record no counters; compare only the result-level
  // metrics (which must be identical — that is the point of the build).
  obs::Json filtered{obs::Json::Object{}};
  for (const auto& [key, value] : golden.as_object()) {
    if (key != "counters") filtered.set(key, value);
  }
  golden = std::move(filtered);
#endif

  const std::vector<std::string> diffs = compare_snapshots(golden, snapshot);
  if (!diffs.empty()) {
    std::ostringstream report;
    report << name << ": " << diffs.size() << " metric(s) drifted from "
           << path << ":";
    for (const std::string& diff : diffs) report << "\n  " << diff;
    report << "\nIf the change is intentional, regenerate with "
              "SRC_UPDATE_GOLDEN=1.";
    ADD_FAILURE() << report.str();
  }
}

}  // namespace src::regression
