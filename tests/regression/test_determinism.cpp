// Determinism guarantees of the observability layer (the "passive
// recording" contract in src/obs/obs.hpp):
//  1. Two traced runs of the same seeded scenario produce byte-identical
//     trace streams and metric snapshots.
//  2. A run with observability disabled produces a bit-identical
//     ExperimentResult to a traced run — instrumentation must not perturb
//     the simulation.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "scenario.hpp"

namespace src::regression {
namespace {

struct TracedRun {
  core::ExperimentResult result;
  std::unique_ptr<obs::Observatory> observatory;
};

TracedRun run_traced() {
  TracedRun run;
  run.observatory = std::make_unique<obs::Observatory>();
  core::ExperimentConfig config = fig9_reduced();
  config.observatory = run.observatory.get();
  run.result = core::run_experiment(config);
  return run;
}

// Exact (==) comparison throughout: "bit-identical" is the contract, so no
// tolerances anywhere in this file.
void expect_identical(const core::ExperimentResult& a,
                      const core::ExperimentResult& b) {
  EXPECT_EQ(a.read_rate.as_bytes_per_second(), b.read_rate.as_bytes_per_second());
  EXPECT_EQ(a.write_rate.as_bytes_per_second(), b.write_rate.as_bytes_per_second());
  EXPECT_EQ(a.total_pauses, b.total_pauses);
  EXPECT_EQ(a.total_cnps, b.total_cnps);
  EXPECT_EQ(a.reads_completed, b.reads_completed);
  EXPECT_EQ(a.writes_completed, b.writes_completed);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.completed, b.completed);
  ASSERT_EQ(a.adjustments.size(), b.adjustments.size());
  for (std::size_t i = 0; i < a.adjustments.size(); ++i) {
    EXPECT_EQ(a.adjustments[i].when, b.adjustments[i].when);
    EXPECT_EQ(a.adjustments[i].weight_ratio, b.adjustments[i].weight_ratio);
    EXPECT_EQ(a.adjustments[i].demanded_bytes_per_sec,
              b.adjustments[i].demanded_bytes_per_sec);
    EXPECT_EQ(a.adjustments[i].decrease, b.adjustments[i].decrease);
  }
}

TEST(Determinism, TracedRunsAreReproducibleAndRecordingIsPassive) {
  const TracedRun first = run_traced();
  const TracedRun second = run_traced();

  // Identical seeds -> byte-identical trace streams and metric snapshots.
  EXPECT_EQ(first.observatory->trace_json(), second.observatory->trace_json());
  EXPECT_EQ(first.observatory->metrics_json(),
            second.observatory->metrics_json());
  expect_identical(first.result, second.result);

  // Observability off entirely: the simulation must not notice.
  const core::ExperimentResult bare = core::run_experiment(fig9_reduced());
  expect_identical(first.result, bare);

#if !defined(SRC_OBS_DISABLE)
  // The traced fig9 run must carry events from every instrumented layer the
  // scenario exercises (acceptance criterion: spans from net, nvme, fabric,
  // core are all present in the Perfetto export).
  std::set<std::string> categories;
  bool saw_span = false;
  for (const obs::TraceEvent& event : first.observatory->tracer().events()) {
    categories.insert(event.cat);
    saw_span = saw_span || event.phase == 'X';
  }
  EXPECT_TRUE(categories.contains("net"));
  EXPECT_TRUE(categories.contains("nvme"));
  EXPECT_TRUE(categories.contains("fabric"));
  EXPECT_TRUE(categories.contains("core"));
  EXPECT_TRUE(saw_span);

  // And the metric side saw the simulator heartbeat.
  const obs::Counter* events_executed =
      first.observatory->metrics().find_counter("sim.events_executed");
  ASSERT_NE(events_executed, nullptr);
  EXPECT_GT(events_executed->value(), 0u);

  // SRC actually adjusted in this congested scenario (otherwise the "core"
  // lane above would be vacuous).
  EXPECT_FALSE(first.result.adjustments.empty());
#endif
}

}  // namespace
}  // namespace src::regression
