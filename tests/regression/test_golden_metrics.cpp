// Golden-metric regression tests: run the reduced evaluation scenarios and
// compare their key metrics (throughputs, pause counts, final weight ratio,
// obs counters) against golden JSON snapshots under tests/regression/golden.
// Regenerate intentionally-changed goldens with:
//
//   SRC_UPDATE_GOLDEN=1 ctest -L regression
#include <gtest/gtest.h>

#include "core/standalone.hpp"
#include "scenario.hpp"

namespace src::regression {
namespace {

obs::Json run_and_snapshot(core::ExperimentConfig config) {
  obs::ObsConfig obs_config;
  obs_config.tracing = false;  // goldens pin metrics, not trace streams
  obs::Observatory observatory(obs_config);
  config.observatory = &observatory;
  const core::ExperimentResult result = core::run_experiment(config);
  return experiment_snapshot(result, observatory);
}

TEST(GoldenMetrics, Fig5WeightSweep) {
  // Fig. 5: standalone weight-ratio sweep. The golden pins the monotone
  // read/write throughput trade-off at three representative weights.
  const workload::Trace trace = workload::generate_micro(
      workload::symmetric_micro(15.0, 32.0 * 1024, 1200), 7);
  obs::Json snap{obs::Json::Object{}};
  for (const std::uint32_t w : {1u, 4u, 16u}) {
    core::StandaloneOptions options;
    options.weight_ratio = w;
    options.horizon = core::arrival_horizon(trace);
    const core::StandaloneResult result =
        core::run_standalone(ssd::ssd_a(), trace, options);
    obs::Json point{obs::Json::Object{}};
    point.set("read_gbps", obs::Json{result.read_rate.as_gbps()});
    point.set("write_gbps", obs::Json{result.write_rate.as_gbps()});
    point.set("reads_completed", obs::Json{result.reads_completed});
    point.set("writes_completed", obs::Json{result.writes_completed});
    std::string key = "w";
    key += std::to_string(w);
    snap.set(key, std::move(point));
  }
  check_against_golden("fig5", snap);
}

TEST(GoldenMetrics, Fig7VdiDcqcnOnly) {
  check_against_golden("fig7", run_and_snapshot(fig7_reduced()));
}

TEST(GoldenMetrics, Table4Incast) {
  check_against_golden("table4", run_and_snapshot(table4_reduced()));
}

// The comparator itself must fail loudly: a >1% throughput perturbation has
// to surface as a named metric-level diff (this is what protects the suite
// from silently-widened tolerances).
TEST(GoldenComparator, FlagsThroughputPerturbationAboveOnePercent) {
  obs::Json golden{obs::Json::Object{}};
  golden.set("read_gbps", obs::Json{2.0});
  golden.set("total_pauses", obs::Json{std::uint64_t{41}});

  obs::Json perturbed{obs::Json::Object{}};
  perturbed.set("read_gbps", obs::Json{2.0 * 1.015});  // +1.5%
  perturbed.set("total_pauses", obs::Json{std::uint64_t{41}});

  const auto diffs = compare_snapshots(golden, perturbed);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_NE(diffs[0].find("read_gbps"), std::string::npos);
  EXPECT_NE(diffs[0].find("golden 2"), std::string::npos);

  // Within tolerance: no diff.
  obs::Json close{obs::Json::Object{}};
  close.set("read_gbps", obs::Json{2.0 * 1.001});  // +0.1%
  close.set("total_pauses", obs::Json{std::uint64_t{41}});
  EXPECT_TRUE(compare_snapshots(golden, close).empty());

  // Counts are exact: off-by-one pause count is a diff.
  obs::Json off_by_one{obs::Json::Object{}};
  off_by_one.set("read_gbps", obs::Json{2.0});
  off_by_one.set("total_pauses", obs::Json{std::uint64_t{42}});
  const auto count_diffs = compare_snapshots(golden, off_by_one);
  ASSERT_EQ(count_diffs.size(), 1u);
  EXPECT_NE(count_diffs[0].find("total_pauses"), std::string::npos);
}

}  // namespace
}  // namespace src::regression
