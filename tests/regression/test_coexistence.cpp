// Golden regressions for the congestion-control coexistence family: the
// mixed-CC presets (Swift-only, DCQCN-vs-Cubic, Swift-vs-Cubic) pin their
// seeded throughputs, fairness index, and obs counters; a bit-identity
// test proves the per-initiator CC plumbing is a no-op for DCQCN-only
// configs (the paper's original scenarios); and the coexistence grid is
// pinned to produce identical results for any SweepRunner worker count.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runner/runner.hpp"
#include "scenario.hpp"

namespace src::regression {
namespace {

const std::vector<std::string> kCoexistencePresets = {
    "swift-only", "dcqcn-vs-cubic", "swift-vs-cubic"};

/// Shrink a coexistence preset to regression scale (mirrors the bench's
/// `--reduced` grid: 60 ms horizon, 4x fewer requests) and build it with
/// the suite's shared TPM.
core::ExperimentConfig coexistence_reduced(const std::string& name) {
  scenario::ScenarioSpec spec = scenario::preset_spec(name);
  spec.max_time = 60 * common::kMillisecond;
  for (scenario::WorkloadSpec& workload : spec.workloads) {
    workload.micro.read.count /= 4;
    workload.micro.write.count /= 4;
  }
  spec.src.tpm.source = "none";  // the pointer below supplies the model
  scenario::BuildOptions options;
  options.tpm = &shared_tpm();
  return scenario::build(spec, options).config;
}

obs::Json run_snapshot(core::ExperimentConfig config) {
  obs::ObsConfig obs_config;
  obs_config.tracing = false;
  obs::Observatory observatory(obs_config);
  config.observatory = &observatory;
  const core::ExperimentResult result = core::run_experiment(config);
  return experiment_snapshot(result, observatory);
}

TEST(CoexistenceGolden, SwiftOnly) {
  check_against_golden("coexist-swift-only",
                       run_snapshot(coexistence_reduced("swift-only")));
}

TEST(CoexistenceGolden, DcqcnVsCubic) {
  check_against_golden("coexist-dcqcn-vs-cubic",
                       run_snapshot(coexistence_reduced("dcqcn-vs-cubic")));
}

TEST(CoexistenceGolden, SwiftVsCubic) {
  check_against_golden("coexist-swift-vs-cubic",
                       run_snapshot(coexistence_reduced("swift-vs-cubic")));
}

// The cc-registry retype and the per-initiator override path must be
// invisible to DCQCN-only runs: explicitly pinning every initiator to the
// config's own algorithm takes the override code path (set_cc_algorithm +
// set_peer_cc on every host) yet must reproduce the default run byte for
// byte — counters included, no tolerances.
TEST(CoexistenceBitIdentity, ExplicitDcqcnInitiatorsMatchDefaultPath) {
  const core::ExperimentConfig base = fig7_reduced();
  core::ExperimentConfig pinned = base;
  pinned.initiator_cc.assign(pinned.initiator_count, pinned.net.cc_algorithm);
  EXPECT_EQ(run_snapshot(base).dump(), run_snapshot(pinned).dump());
}

// The coexistence grid is a SweepRunner workload (bench/cc_coexistence):
// serial (1 thread) and parallel (4 threads) sweeps over the presets must
// produce byte-identical snapshots per grid point.
TEST(CoexistenceSweep, WorkerCountDoesNotChangeResults) {
  shared_tpm();  // materialize the function-local static before fan-out
  const auto run_grid = [](std::size_t threads) {
    return runner::sweep_map(
        kCoexistencePresets.size(),
        [](std::size_t i) {
          return run_snapshot(coexistence_reduced(kCoexistencePresets[i]))
              .dump();
        },
        threads);
  };
  const std::vector<std::string> serial = run_grid(1);
  const std::vector<std::string> parallel = run_grid(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << kCoexistencePresets[i];
  }
}

}  // namespace
}  // namespace src::regression
