// Property tests for the observability primitives (src/obs): histogram
// invariants, counter monotonicity, ring-buffer bounds, JSON round trips,
// and macro/scope routing.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "obs/obs.hpp"

namespace src::obs {
namespace {

// ---------------------------------------------------------------------------
// FixedHistogram
// ---------------------------------------------------------------------------

TEST(FixedHistogram, BucketCountsSumToTotal) {
  // Property: for any observation sequence, sum(bucket counts) == total().
  std::uint64_t state = 0xfeedbeef;
  FixedHistogram hist(FixedHistogram::latency_buckets_us());
  for (int i = 0; i < 10000; ++i) {
    // Span everything from sub-bucket to far past the last bound.
    const double value =
        static_cast<double>(common::splitmix64(state) % 1'000'000'000ull) / 10.0;
    hist.observe(value);
    std::uint64_t sum = 0;
    for (std::size_t b = 0; b < hist.bucket_count(); ++b) sum += hist.bucket(b);
    ASSERT_EQ(sum, hist.total());
  }
  EXPECT_EQ(hist.total(), 10000u);
}

TEST(FixedHistogram, BoundsAreInclusiveUpperEdges) {
  FixedHistogram hist({1.0, 10.0, 100.0});
  hist.observe(1.0);    // exactly on the first edge -> bucket 0
  hist.observe(1.5);    // bucket 1
  hist.observe(10.0);   // bucket 1
  hist.observe(100.5);  // overflow bucket
  EXPECT_EQ(hist.bucket(0), 1u);
  EXPECT_EQ(hist.bucket(1), 2u);
  EXPECT_EQ(hist.bucket(2), 0u);
  EXPECT_EQ(hist.bucket(3), 1u);
  EXPECT_EQ(hist.bucket_count(), 4u);  // 3 bounds + overflow
}

TEST(FixedHistogram, MeanAndQuantileTrackObservations) {
  FixedHistogram hist(FixedHistogram::latency_buckets_us());
  for (int i = 0; i < 1000; ++i) hist.observe(100.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 100.0);
  // All mass sits in the bucket whose edges are (50, 100]: midpoint 75.
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 75.0);
  EXPECT_DOUBLE_EQ(hist.quantile(0.99), 75.0);
}

TEST(FixedHistogram, LatencyBucketsAreStrictlyAscending) {
  const auto bounds = FixedHistogram::latency_buckets_us();
  ASSERT_FALSE(bounds.empty());
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    ASSERT_LT(bounds[i - 1], bounds[i]);
  }
}

// ---------------------------------------------------------------------------
// Counter / Gauge / MetricRegistry
// ---------------------------------------------------------------------------

TEST(MetricRegistry, CountersAreMonotone) {
  // Property: a counter's value never decreases across any inc() sequence.
  std::uint64_t state = 42;
  MetricRegistry registry;
  Counter& counter = registry.counter("test.monotone");
  std::uint64_t previous = counter.value();
  for (int i = 0; i < 10000; ++i) {
    counter.inc(common::splitmix64(state) % 5);
    ASSERT_GE(counter.value(), previous);
    previous = counter.value();
  }
}

TEST(MetricRegistry, ReferencesSurviveLaterInsertions) {
  MetricRegistry registry;
  Counter& first = registry.counter("a.first");
  first.inc();
  // Interning many more metrics must not invalidate the reference.
  for (int i = 0; i < 1000; ++i) {
    registry.counter("b.bulk." + std::to_string(i)).inc();
  }
  first.inc();
  EXPECT_EQ(registry.find_counter("a.first")->value(), 2u);
  EXPECT_EQ(registry.size(), 1001u);
}

TEST(MetricRegistry, FindReturnsNullForUntouchedMetrics) {
  MetricRegistry registry;
  registry.counter("present");
  EXPECT_NE(registry.find_counter("present"), nullptr);
  EXPECT_EQ(registry.find_counter("absent"), nullptr);
  EXPECT_EQ(registry.find_gauge("absent"), nullptr);
  EXPECT_EQ(registry.find_histogram("absent"), nullptr);
}

TEST(MetricRegistry, FirstHistogramCallFixesBounds) {
  MetricRegistry registry;
  FixedHistogram& hist = registry.histogram("h", {1.0, 2.0});
  FixedHistogram& again = registry.histogram("h", {99.0});
  EXPECT_EQ(&hist, &again);
  EXPECT_EQ(again.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricRegistry, SnapshotRoundTripsThroughParser) {
  MetricRegistry registry;
  registry.counter("net.cnps").inc(7);
  registry.gauge("core.weight").set(4.0);
  registry.latency_histogram_us("nvme.read_latency_us").observe(123.0);

  const Json parsed = Json::parse(registry.snapshot_json());
  EXPECT_EQ(parsed.find("counters")->find("net.cnps")->as_uint64(), 7u);
  EXPECT_DOUBLE_EQ(parsed.find("gauges")->find("core.weight")->as_double(), 4.0);
  const Json* hist = parsed.find("histograms")->find("nvme.read_latency_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("total")->as_uint64(), 1u);
  EXPECT_DOUBLE_EQ(hist->find("sum")->as_double(), 123.0);
  // counts has one more entry than bounds (the overflow bucket).
  EXPECT_EQ(hist->find("counts")->as_array().size(),
            hist->find("bounds")->as_array().size() + 1);
}

// ---------------------------------------------------------------------------
// EventTracer ring buffer
// ---------------------------------------------------------------------------

TEST(EventTracer, RingNeverExceedsCapacity) {
  // Property: size() <= capacity() at every point, for any record count.
  EventTracer tracer(64);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    tracer.instant("sim", "tick", static_cast<common::SimTime>(i));
    ASSERT_LE(tracer.size(), tracer.capacity());
    ASSERT_EQ(tracer.recorded(), i + 1);
    ASSERT_EQ(tracer.dropped(), tracer.recorded() - tracer.size());
  }
  EXPECT_EQ(tracer.size(), 64u);
  EXPECT_EQ(tracer.dropped(), 1000u - 64u);
}

TEST(EventTracer, OverflowKeepsNewestEventsInOrder) {
  EventTracer tracer(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    tracer.instant("sim", "tick", static_cast<common::SimTime>(i));
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest surviving event first, newest last; timestamps 12..19.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts, static_cast<common::SimTime>(12 + i));
  }
}

TEST(EventTracer, ClearResetsEverything) {
  EventTracer tracer(4);
  for (int i = 0; i < 10; ++i) tracer.instant("sim", "tick", i);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  tracer.instant("sim", "tick", 99);
  EXPECT_EQ(tracer.events().front().ts, 99);
}

TEST(EventTracer, ChromeJsonRoundTripsThroughParser) {
  EventTracer tracer;
  tracer.complete("nvme", "read", 1000, 2500, /*lane=*/3, /*value=*/4096.0);
  tracer.instant("net", "pfc.pause", 5000, /*lane=*/1);
  tracer.counter("core", "src.weight_ratio", 7000, /*lane=*/0, 4.0);
  tracer.counter("net", "dcqcn.rate_mbps", 8000, /*lane=*/2, 1234.5);

  const Json parsed = Json::parse(tracer.to_chrome_json_string());
  const Json::Array& events = parsed.find("traceEvents")->as_array();
  ASSERT_EQ(events.size(), 4u);

  const Json& span = events[0];
  EXPECT_EQ(span.find("ph")->as_string(), "X");
  EXPECT_EQ(span.find("name")->as_string(), "read");
  EXPECT_EQ(span.find("cat")->as_string(), "nvme");
  EXPECT_DOUBLE_EQ(span.find("ts")->as_double(), 1.0);    // us
  EXPECT_DOUBLE_EQ(span.find("dur")->as_double(), 2.5);   // us
  EXPECT_EQ(span.find("tid")->as_uint64(), 3u);
  // Lossless ns originals ride in args.
  EXPECT_EQ(span.find("args")->find("ts_ns")->as_uint64(), 1000u);
  EXPECT_EQ(span.find("args")->find("dur_ns")->as_uint64(), 2500u);

  const Json& instant = events[1];
  EXPECT_EQ(instant.find("ph")->as_string(), "i");
  EXPECT_EQ(instant.find("s")->as_string(), "t");

  // Counter on lane 0 keeps its bare name; non-zero lanes are suffixed so
  // Chrome renders distinct tracks.
  EXPECT_EQ(events[2].find("name")->as_string(), "src.weight_ratio");
  EXPECT_EQ(events[3].find("name")->as_string(), "dcqcn.rate_mbps[2]");
  EXPECT_DOUBLE_EQ(events[3].find("args")->find("value")->as_double(), 1234.5);
}

// ---------------------------------------------------------------------------
// Json parser
// ---------------------------------------------------------------------------

TEST(Json, DumpParseRoundTripPreservesStructure) {
  Json root{Json::Object{}};
  root.set("int", Json{std::int64_t{-42}});
  root.set("big", Json{std::uint64_t{1} << 52});
  root.set("pi", Json{3.141592653589793});
  root.set("text", Json{"with \"quotes\" and \\slashes\\ and \n newlines"});
  root.set("flag", Json{true});
  root.set("nothing", Json{});
  root.set("list", Json{Json::Array{Json{1}, Json{"two"}, Json{false}}});

  for (const int indent : {-1, 0, 2}) {
    const Json parsed = Json::parse(root.dump(indent));
    EXPECT_EQ(parsed.find("int")->as_int64(), -42);
    EXPECT_EQ(parsed.find("big")->as_uint64(), std::uint64_t{1} << 52);
    EXPECT_DOUBLE_EQ(parsed.find("pi")->as_double(), 3.141592653589793);
    EXPECT_EQ(parsed.find("text")->as_string(),
              "with \"quotes\" and \\slashes\\ and \n newlines");
    EXPECT_TRUE(parsed.find("flag")->as_bool());
    EXPECT_TRUE(parsed.find("nothing")->is_null());
    ASSERT_EQ(parsed.find("list")->as_array().size(), 3u);
    EXPECT_EQ(parsed.find("list")->as_array()[1].as_string(), "two");
    // A second round trip is a fixed point.
    EXPECT_EQ(parsed.dump(indent), Json::parse(parsed.dump(indent)).dump(indent));
  }
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), std::runtime_error);
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW(Json::parse("'single'"), std::runtime_error);
  EXPECT_THROW(Json::parse("nul"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Observatory scope + macros
// ---------------------------------------------------------------------------

TEST(ObsScope, NestsAndRestoresPrevious) {
  EXPECT_EQ(current(), nullptr);
  Observatory outer, inner;
  {
    ObsScope scope_outer(&outer);
    EXPECT_EQ(current(), &outer);
    {
      ObsScope scope_inner(&inner);
      EXPECT_EQ(current(), &inner);
    }
    EXPECT_EQ(current(), &outer);
  }
  EXPECT_EQ(current(), nullptr);
}

TEST(ObsMacros, RecordOnlyIntoTheCurrentObservatory) {
  // With no observatory installed the macros are no-ops and must not
  // evaluate their arguments.
  int evaluations = 0;
  auto count_eval = [&evaluations] {
    ++evaluations;
    return 1.0;
  };
  SRC_OBS_GAUGE("test.gauge", count_eval());
#if defined(SRC_OBS_DISABLE)
  EXPECT_EQ(evaluations, 0);
#else
  EXPECT_EQ(evaluations, 0);  // runtime-off: argument not evaluated either

  Observatory observatory;
  {
    ObsScope scope(&observatory);
    SRC_OBS_COUNT("test.count");
    SRC_OBS_COUNT_ADD("test.count", 2);
    SRC_OBS_GAUGE("test.gauge", count_eval());
    SRC_OBS_LATENCY_US("test.latency_us", 17.0);
    SRC_OBS_SPAN("sim", "span", 100, 50, 1, 0.0);
    SRC_OBS_INSTANT("sim", "instant", 200, 1, 0.0);
    SRC_OBS_TRACE_COUNTER("sim", "counter", 300, 1, 5.0);
  }
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(observatory.metrics().find_counter("test.count")->value(), 3u);
  EXPECT_DOUBLE_EQ(observatory.metrics().find_gauge("test.gauge")->value(), 1.0);
  EXPECT_EQ(observatory.metrics().find_histogram("test.latency_us")->total(), 1u);
  EXPECT_EQ(observatory.tracer().size(), 3u);

  // Outside the scope: back to no-op.
  SRC_OBS_COUNT("test.count");
  EXPECT_EQ(observatory.metrics().find_counter("test.count")->value(), 3u);
#endif
}

#if !defined(SRC_OBS_DISABLE)
TEST(ObsMacros, TracingToggleGatesTraceMacrosOnly) {
  ObsConfig config;
  config.tracing = false;
  Observatory observatory(config);
  ObsScope scope(&observatory);
  SRC_OBS_COUNT("test.count");
  SRC_OBS_SPAN("sim", "span", 0, 10, 0, 0.0);
  SRC_OBS_INSTANT("sim", "instant", 0, 0, 0.0);
  SRC_OBS_TRACE_COUNTER("sim", "counter", 0, 0, 1.0);
  EXPECT_EQ(observatory.metrics().find_counter("test.count")->value(), 1u);
  EXPECT_EQ(observatory.tracer().size(), 0u);
}
#endif

}  // namespace
}  // namespace src::obs
