// Fairness metrics (obs/fairness.hpp): Jain's index on hand-computed
// vectors and its edge cases, share normalization, and passivity — the
// fairness instrumentation must be observation-only, so a run with metrics
// enabled and one with no observatory at all produce bit-identical results.
#include "obs/fairness.hpp"

#include <gtest/gtest.h>

#include "scenario/build.hpp"
#include "scenario/presets.hpp"

namespace src::obs {
namespace {

TEST(JainIndex, EqualSharesAreMaximallyFair) {
  EXPECT_DOUBLE_EQ(jain_index({1.0, 1.0, 1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({0.25, 0.25, 0.25, 0.25}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({7.5}), 1.0);  // a single flow is trivially fair
}

TEST(JainIndex, OneHotIsOneOverN) {
  EXPECT_DOUBLE_EQ(jain_index({1.0, 0.0}), 0.5);
  EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0, 1.0, 0.0}), 0.25);
  EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0, 0.0, 0.0, 5.0}), 0.2);
}

TEST(JainIndex, HandComputedValues) {
  // (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
  EXPECT_DOUBLE_EQ(jain_index({1.0, 2.0, 3.0}), 36.0 / 42.0);
  // (4+1)^2 / (2 * 17) = 25/34.
  EXPECT_DOUBLE_EQ(jain_index({4.0, 1.0}), 25.0 / 34.0);
  // Scale invariance: shares and raw throughputs give the same index.
  EXPECT_DOUBLE_EQ(jain_index({400.0, 100.0}), jain_index({0.8, 0.2}));
}

TEST(JainIndex, DegenerateInputsAreFair) {
  // No flows / no traffic: defined as 1.0 so quiescent runs report "fair".
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0}), 1.0);
}

TEST(ThroughputShares, NormalizesToUnitSum) {
  const std::vector<double> shares = throughput_shares({300.0, 100.0});
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_DOUBLE_EQ(shares[0], 0.75);
  EXPECT_DOUBLE_EQ(shares[1], 0.25);
}

TEST(ThroughputShares, AllZeroFallsBackToEqualShares) {
  const std::vector<double> shares = throughput_shares({0.0, 0.0, 0.0, 0.0});
  for (const double share : shares) EXPECT_DOUBLE_EQ(share, 0.25);
  EXPECT_TRUE(throughput_shares({}).empty());
}

// Passivity: the fairness metrics (per-initiator timelines, Jain gauge)
// ride on the observatory, which must never feed back into simulation
// behaviour. A metrics-enabled run and a no-observatory run of the same
// mixed-CC scenario must agree on every result field, bit for bit.
TEST(FairnessPassivity, MetricsOnOffRunsAreBitIdentical) {
  scenario::ScenarioSpec spec =
      scenario::coexistence_spec({"swift", "cubic"}, /*use_src=*/false);
  spec.max_time = 20 * common::kMillisecond;
  for (scenario::WorkloadSpec& workload : spec.workloads) {
    workload.micro.read.count /= 10;
    workload.micro.write.count /= 10;
  }

  ObsConfig obs_config;
  obs_config.tracing = false;
  Observatory observatory(obs_config);
  scenario::BuildOptions with_metrics;
  with_metrics.observatory = &observatory;
  const core::ExperimentResult observed = scenario::run(spec, with_metrics);
  const core::ExperimentResult silent = scenario::run(spec);

  EXPECT_EQ(observed.read_rate.as_bytes_per_second(),
            silent.read_rate.as_bytes_per_second());
  EXPECT_EQ(observed.write_rate.as_bytes_per_second(),
            silent.write_rate.as_bytes_per_second());
  EXPECT_EQ(observed.reads_completed, silent.reads_completed);
  EXPECT_EQ(observed.writes_completed, silent.writes_completed);
  EXPECT_EQ(observed.total_pauses, silent.total_pauses);
  EXPECT_EQ(observed.total_cnps, silent.total_cnps);
  EXPECT_EQ(observed.end_time, silent.end_time);
  ASSERT_EQ(observed.per_initiator_read_rate.size(),
            silent.per_initiator_read_rate.size());
  for (std::size_t i = 0; i < observed.per_initiator_read_rate.size(); ++i) {
    EXPECT_EQ(observed.per_initiator_read_rate[i].as_bytes_per_second(),
              silent.per_initiator_read_rate[i].as_bytes_per_second());
  }
  EXPECT_EQ(observed.read_fairness_index(), silent.read_fairness_index());
  // The observed run did record the fairness gauge.
  const Json metrics = observatory.metrics().snapshot();
  const Json* gauges = metrics.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_NE(gauges->find("core.read_jain_index"), nullptr);
}

}  // namespace
}  // namespace src::obs
