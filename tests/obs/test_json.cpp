// obs::Json parser hardening: malformed-input fixtures (truncation, bad
// escapes, duplicate keys, non-finite numbers, trailing garbage) and a
// serialize -> parse -> serialize round-trip property over random
// documents. The parser is the trust boundary for scenario manifests and
// golden snapshots, so "garbage in" must be a clean error, never a
// silently-wrong document.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "obs/json.hpp"

namespace src::obs {
namespace {

// ---------------------------------------------------------------------------
// Malformed-input fixtures
// ---------------------------------------------------------------------------

/// Every entry must make Json::parse throw std::runtime_error.
const char* const kMalformed[] = {
    // Truncation at every structural position.
    "",
    "{",
    "{\"a\"",
    "{\"a\":",
    "{\"a\": 1",
    "{\"a\": 1,",
    "[",
    "[1, 2",
    "[1,",
    "\"unterminated",
    "\"trailing escape \\",
    "tru",
    "nul",
    "-",
    // Bad escapes.
    "\"\\x\"",
    "\"\\u12\"",
    "\"\\u12zz\"",
    // Duplicate object keys (silent last-or-first-wins is a round-trip bug).
    "{\"a\": 1, \"a\": 2}",
    "{\"a\": {\"b\": 1, \"b\": 2}}",
    // Non-finite / malformed numbers (JSON has no nan/inf literals).
    "nan",
    "inf",
    "-inf",
    "1e999999",
    "1.2.3",
    "1e",
    "--5",
    // Trailing garbage after a complete document.
    "{} x",
    "1 2",
    "[1] ]",
    "truee",
    // Structural errors.
    "{1: 2}",
    "{\"a\" 1}",
    "[1 2]",
    "{\"a\": 1 \"b\": 2}",
};

TEST(JsonParse, RejectsMalformedInput) {
  for (const char* text : kMalformed) {
    EXPECT_THROW(Json::parse(text), std::runtime_error)
        << "accepted malformed input: " << text;
  }
}

TEST(JsonParse, DuplicateKeyErrorNamesTheKey) {
  try {
    Json::parse("{\"seed\": 1, \"seed\": 2}");
    FAIL() << "duplicate key accepted";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("duplicate object key 'seed'"),
              std::string::npos)
        << err.what();
  }
}

TEST(JsonParse, AcceptsEscapesAndUnicode) {
  const Json doc = Json::parse("\"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\"");
  EXPECT_EQ(doc.as_string(), "a\"b\\c\n\tA\xc3\xa9");
}

TEST(JsonDump, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(Json{std::nan("")}.dump(), "null");
  EXPECT_EQ(Json{std::numeric_limits<double>::infinity()}.dump(), "null");
}

// ---------------------------------------------------------------------------
// Round-trip property
// ---------------------------------------------------------------------------

/// Deterministic random document: scalars at the leaves, objects/arrays
/// (with unique keys) above, depth-bounded.
Json random_json(common::Rng& rng, int depth) {
  const std::uint64_t pick = rng.uniform_index(depth <= 0 ? 4 : 6);
  switch (pick) {
    case 0: return Json{};  // null
    case 1: return Json{rng.uniform() < 0.5};
    case 2:
      // Mix exact integers (the common case: counters) and full doubles.
      if (rng.uniform() < 0.5) {
        return Json{static_cast<std::int64_t>(rng.uniform_index(1u << 30)) -
                    (1 << 29)};
      }
      return Json{rng.uniform(-1e12, 1e12)};
    case 3: {
      std::string s;
      const std::uint64_t len = rng.uniform_index(12);
      for (std::uint64_t i = 0; i < len; ++i) {
        // Printable ASCII plus the characters the writer must escape.
        const char alphabet[] = "abc XYZ09\"\\\n\t";
        s.push_back(alphabet[rng.uniform_index(sizeof(alphabet) - 1)]);
      }
      return Json{std::move(s)};
    }
    case 4: {
      Json array{Json::Array{}};
      const std::uint64_t n = rng.uniform_index(5);
      for (std::uint64_t i = 0; i < n; ++i) {
        array.push_back(random_json(rng, depth - 1));
      }
      return array;
    }
    default: {
      Json object{Json::Object{}};
      const std::uint64_t n = rng.uniform_index(5);
      for (std::uint64_t i = 0; i < n; ++i) {
        object.set("k" + std::to_string(i), random_json(rng, depth - 1));
      }
      return object;
    }
  }
}

TEST(JsonRoundTrip, SerializeParseSerializeIsIdentity) {
  // Property: for any document, dump(parse(dump(doc))) == dump(doc), both
  // compact and pretty-printed. 64-bit-exact integers and %.17g doubles
  // make this exact, not approximate.
  common::Rng rng(0x5eed0b5ull);
  for (int i = 0; i < 500; ++i) {
    const Json doc = random_json(rng, 3);
    for (const int indent : {-1, 2}) {
      const std::string first = doc.dump(indent);
      const Json reparsed = Json::parse(first);
      EXPECT_EQ(reparsed.dump(indent), first) << "document: " << first;
    }
  }
}

}  // namespace
}  // namespace src::obs
