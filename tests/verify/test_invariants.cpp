// The invariant checkers, two ways. First as pure functions: a healthy
// snapshot stays silent and each deliberately corrupted field trips exactly
// the law it breaks. Then end-to-end through scenario::build: a clean run
// yields a clean report, verification never perturbs the run it watches,
// and a fault plan that genuinely wedges the stack (probability-1 drops
// with retries disabled) is caught by the liveness watchdog.
#include "verify/invariants.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "scenario/build.hpp"
#include "scenario/presets.hpp"
#include "workload/micro.hpp"

namespace src::verify {
namespace {

using common::kMillisecond;

bool mentions(const std::vector<Violation>& out, const char* checker) {
  return std::any_of(out.begin(), out.end(), [&](const Violation& v) {
    return v.checker == checker;
  });
}

// --- io-accounting -----------------------------------------------------

InitiatorSnapshot healthy_initiator() {
  InitiatorSnapshot s;
  s.reads_issued = 10;
  s.writes_issued = 5;
  s.reads_completed = 7;
  s.writes_completed = 3;
  s.reads_failed = 1;
  s.writes_failed = 1;
  s.outstanding = 3;  // 15 issued - 12 terminal
  return s;
}

TEST(IoAccounting, HealthySnapshotIsClean) {
  std::vector<Violation> out;
  check_io_accounting(healthy_initiator(), /*at_drain=*/false, kMillisecond,
                      "initiator[0]", out);
  EXPECT_TRUE(out.empty());
}

TEST(IoAccounting, CompletionsBeyondIssuesFire) {
  InitiatorSnapshot s = healthy_initiator();
  s.reads_completed = 12;  // 13 terminal reads for 10 issued
  std::vector<Violation> out;
  check_io_accounting(s, false, kMillisecond, "initiator[0]", out);
  EXPECT_TRUE(mentions(out, kIoAccountingChecker));
}

TEST(IoAccounting, OutstandingMismatchFires) {
  InitiatorSnapshot s = healthy_initiator();
  s.outstanding = 7;  // issued - terminal is 3
  std::vector<Violation> out;
  check_io_accounting(s, false, kMillisecond, "initiator[0]", out);
  ASSERT_TRUE(mentions(out, kIoAccountingChecker));
  EXPECT_NE(out.front().detail.find("outstanding"), std::string::npos);
}

TEST(IoAccounting, DrainDemandsTerminalStates) {
  // 3 requests never reached a terminal state: legal mid-run, a violation
  // once the run claims to have drained.
  const InitiatorSnapshot s = healthy_initiator();
  std::vector<Violation> mid_run;
  check_io_accounting(s, /*at_drain=*/false, kMillisecond, "initiator[0]",
                      mid_run);
  EXPECT_TRUE(mid_run.empty());

  std::vector<Violation> drained;
  check_io_accounting(s, /*at_drain=*/true, kMillisecond, "initiator[0]",
                      drained);
  ASSERT_TRUE(mentions(drained, kIoAccountingChecker));
  EXPECT_NE(drained.front().detail.find("drained"), std::string::npos);
}

// --- driver-conservation ------------------------------------------------

DriverSnapshot healthy_driver() {
  DriverSnapshot s;
  s.accepted_reads = 20;
  s.accepted_writes = 10;
  s.submitted_reads = 18;
  s.submitted_writes = 9;
  s.completed_reads = 15;
  s.completed_writes = 8;
  s.in_flight_reads = 3;
  s.in_flight_writes = 1;
  s.in_flight = 4;
  s.queued = 3;  // accepted 30 = submitted 27 + queued 3
  return s;
}

TEST(DriverConservation, HealthySnapshotIsClean) {
  std::vector<Violation> out;
  check_driver_conservation(healthy_driver(), kMillisecond, "driver[0]", out);
  EXPECT_TRUE(out.empty());
}

TEST(DriverConservation, SubmittedFlowImbalanceFires) {
  DriverSnapshot s = healthy_driver();
  s.completed_reads = 11;  // submitted 18 != 11 completed + 3 in flight
  std::vector<Violation> out;
  check_driver_conservation(s, kMillisecond, "driver[0]", out);
  EXPECT_TRUE(mentions(out, kDriverConservationChecker));
}

TEST(DriverConservation, AcceptedQueueImbalanceFires) {
  DriverSnapshot s = healthy_driver();
  s.queued = 9;  // accepted 30 != submitted 27 + queued 9
  std::vector<Violation> out;
  check_driver_conservation(s, kMillisecond, "driver[0]", out);
  EXPECT_TRUE(mentions(out, kDriverConservationChecker));
}

TEST(DriverConservation, InFlightSplitMismatchFires) {
  DriverSnapshot s = healthy_driver();
  s.in_flight = 9;  // reads 3 + writes 1
  std::vector<Violation> out;
  check_driver_conservation(s, kMillisecond, "driver[0]", out);
  EXPECT_TRUE(mentions(out, kDriverConservationChecker));
}

// --- ssq-tokens ---------------------------------------------------------

SsqSnapshot healthy_ssq() {
  SsqSnapshot s;
  s.fetched_from_rsq = 6;
  s.fetched_from_wsq = 4;
  s.borrowed_fetches = 2;
  s.tokens_granted = 9;
  s.tokens_charged = 8;  // + 2 borrowed = 10 fetches
  s.read_tokens = 1;     // live pools within granted - charged slack
  s.write_tokens = 0;
  return s;
}

TEST(SsqTokens, HealthySnapshotIsClean) {
  std::vector<Violation> out;
  check_ssq_tokens(healthy_ssq(), kMillisecond, "ssq[0]", out);
  EXPECT_TRUE(out.empty());
}

TEST(SsqTokens, UnaccountedFetchFires) {
  SsqSnapshot s = healthy_ssq();
  s.fetched_from_rsq = 9;  // a fetch that neither charged nor borrowed
  std::vector<Violation> out;
  check_ssq_tokens(s, kMillisecond, "ssq[0]", out);
  EXPECT_TRUE(mentions(out, kSsqTokensChecker));
}

TEST(SsqTokens, ChargesBeyondGrantsFire) {
  SsqSnapshot s = healthy_ssq();
  s.tokens_granted = 5;  // 8 charged
  std::vector<Violation> out;
  check_ssq_tokens(s, kMillisecond, "ssq[0]", out);
  EXPECT_TRUE(mentions(out, kSsqTokensChecker));
}

TEST(SsqTokens, LivePoolsBeyondSlackFire) {
  SsqSnapshot s = healthy_ssq();
  s.read_tokens = 5;  // slack is granted 9 - charged 8 = 1
  std::vector<Violation> out;
  check_ssq_tokens(s, kMillisecond, "ssq[0]", out);
  EXPECT_TRUE(mentions(out, kSsqTokensChecker));
}

// --- retry-bound --------------------------------------------------------

TEST(RetryBound, WithinBudgetIsClean) {
  InitiatorSnapshot s;
  s.retry_enabled = true;
  s.max_retries = 4;
  s.max_attempts = 4;
  s.retries = 9;
  std::vector<Violation> out;
  check_retry_bound(s, kMillisecond, "initiator[0]", out);
  EXPECT_TRUE(out.empty());
}

TEST(RetryBound, BudgetOverrunFires) {
  InitiatorSnapshot s;
  s.retry_enabled = true;
  s.max_retries = 4;
  s.max_attempts = 5;
  std::vector<Violation> out;
  check_retry_bound(s, kMillisecond, "initiator[0]", out);
  EXPECT_TRUE(mentions(out, kRetryBoundChecker));
}

TEST(RetryBound, DisabledPolicyMustNeverRetry) {
  InitiatorSnapshot quiet;
  std::vector<Violation> out;
  check_retry_bound(quiet, kMillisecond, "initiator[0]", out);
  EXPECT_TRUE(out.empty());

  InitiatorSnapshot s;
  s.retries = 1;
  check_retry_bound(s, kMillisecond, "initiator[0]", out);
  EXPECT_TRUE(mentions(out, kRetryBoundChecker));
}

// --- end to end through scenario::build --------------------------------

/// A fig7-reduced-shaped run (DCQCN-only, so no TPM) cut down to a small
/// micro workload: every request is issued inside the first ~10 ms and a
/// healthy stack drains it well before the 60 ms cap.
scenario::ScenarioSpec tiny_spec() {
  scenario::ScenarioSpec spec = scenario::preset_spec("fig7-reduced");
  spec.name = "verify-tiny";
  spec.max_time = 60 * kMillisecond;
  spec.workloads.clear();
  scenario::WorkloadSpec workload;
  workload.kind = "micro";
  workload.micro.read = workload::StreamParams{100.0, 16.0 * 1024, 100};
  workload.micro.write = workload::StreamParams{200.0, 16.0 * 1024, 40};
  spec.workloads.push_back(workload);
  spec.verify.enabled = true;
  return spec;
}

TEST(RigVerifier, CleanRunYieldsCleanReport) {
  const scenario::BuiltScenario built = scenario::build(tiny_spec());
  ASSERT_NE(built.verify_report, nullptr);
  const core::ExperimentResult result = core::run_experiment(built.config);

  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(built.verify_report->clean())
      << built.verify_report->violations.front().detail;
  EXPECT_GT(built.verify_report->polls, 0u);
  EXPECT_TRUE(built.verify_report->drain_checked);
  EXPECT_FALSE(built.verify_report->truncated);
}

TEST(RigVerifier, ObservationIsPassive) {
  // The verifier schedules its own poll events (so end_time and the event
  // count legitimately move) but must never perturb the stack: every
  // workload-facing counter is identical with verification on and off.
  scenario::ScenarioSpec spec = tiny_spec();
  const core::ExperimentResult watched =
      core::run_experiment(scenario::build(spec).config);
  spec.verify.enabled = false;
  const core::ExperimentResult bare =
      core::run_experiment(scenario::build(spec).config);

  EXPECT_EQ(watched.reads_completed, bare.reads_completed);
  EXPECT_EQ(watched.writes_completed, bare.writes_completed);
  EXPECT_EQ(watched.reads_failed, bare.reads_failed);
  EXPECT_EQ(watched.retries, bare.retries);
  EXPECT_EQ(watched.timeouts, bare.timeouts);
  EXPECT_EQ(watched.total_pauses, bare.total_pauses);
  EXPECT_EQ(watched.total_cnps, bare.total_cnps);
}

TEST(RigVerifier, WedgedRunTripsTheLivenessWatchdog) {
  // Probability-1 drops on the initiator's access link with retries
  // disabled: every command issued inside the window is lost for good, so
  // once the fault horizon (8 ms) and the grace period pass with work
  // still outstanding, the watchdog must fire.
  scenario::ScenarioSpec spec = tiny_spec();
  spec.name = "verify-wedged";
  spec.retry.enabled = false;
  fault::PacketDropFault drop;
  drop.node = 1;  // the lone initiator; node 0 is the hub switch
  drop.port = 0;
  drop.start = 0;
  drop.end = 8 * kMillisecond;
  drop.probability = 1.0;
  spec.faults.packet_drops.push_back(drop);

  const scenario::BuiltScenario built = scenario::build(spec);
  const core::ExperimentResult result = core::run_experiment(built.config);

  EXPECT_FALSE(result.completed);
  ASSERT_NE(built.verify_report, nullptr);
  ASSERT_FALSE(built.verify_report->clean());
  EXPECT_TRUE(mentions(built.verify_report->violations, kLivenessChecker));
}

}  // namespace
}  // namespace src::verify
