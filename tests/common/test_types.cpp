#include "common/types.hpp"

#include <gtest/gtest.h>

namespace src::common {
namespace {

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(microseconds(1.0), 1'000);
  EXPECT_EQ(milliseconds(1.0), 1'000'000);
  EXPECT_EQ(seconds(1.0), 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_milliseconds(kMillisecond), 1.0);
  EXPECT_DOUBLE_EQ(to_microseconds(kMicrosecond), 1.0);
}

TEST(TimeTest, FractionalConversions) {
  EXPECT_EQ(microseconds(2.5), 2'500);
  EXPECT_EQ(milliseconds(0.001), 1'000);
}

TEST(RateTest, GbpsRoundTrip) {
  const Rate r = Rate::gbps(40.0);
  EXPECT_DOUBLE_EQ(r.as_gbps(), 40.0);
  EXPECT_DOUBLE_EQ(r.as_bytes_per_second(), 5e9);
}

TEST(RateTest, MbpsRoundTrip) {
  const Rate r = Rate::mbps(100.0);
  EXPECT_DOUBLE_EQ(r.as_mbps(), 100.0);
}

TEST(RateTest, TransmissionTime) {
  // 1 KB at 8 Gbps = 1e9 B/s -> 1024 ns.
  const Rate r = Rate::gbps(8.0);
  EXPECT_EQ(r.transmission_time(1024), 1024);
}

TEST(RateTest, ZeroRateNeverTransmits) {
  EXPECT_EQ(Rate::zero().transmission_time(1), kTimeInfinity);
  EXPECT_TRUE(Rate::zero().is_zero());
}

TEST(RateTest, Arithmetic) {
  const Rate a = Rate::gbps(10.0);
  const Rate b = Rate::gbps(30.0);
  EXPECT_DOUBLE_EQ((a + b).as_gbps(), 40.0);
  EXPECT_DOUBLE_EQ((b - a).as_gbps(), 20.0);
  EXPECT_DOUBLE_EQ((a * 2.0).as_gbps(), 20.0);
  EXPECT_DOUBLE_EQ((b / 3.0).as_gbps(), 10.0);
  EXPECT_LT(a, b);
}

TEST(ByteLiteralsTest, Values) {
  EXPECT_EQ(4_KiB, 4096u);
  EXPECT_EQ(1_MiB, 1048576u);
  EXPECT_EQ(1_GiB, 1073741824u);
}

TEST(IoTypeTest, ToString) {
  EXPECT_STREQ(to_string(IoType::kRead), "read");
  EXPECT_STREQ(to_string(IoType::kWrite), "write");
}

}  // namespace
}  // namespace src::common
