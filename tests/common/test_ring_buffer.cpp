#include "common/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace src::common {
namespace {

TEST(RingBufferTest, StartsEmptyWithoutAllocation) {
  RingBuffer<int> ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.capacity(), 0u);
}

TEST(RingBufferTest, FifoOrderPreserved) {
  RingBuffer<int> ring;
  for (int i = 0; i < 5; ++i) ring.push_back(i);
  EXPECT_EQ(ring.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ring.front(), i);
    ring.pop_front();
  }
  EXPECT_TRUE(ring.empty());
}

TEST(RingBufferTest, WrapAroundKeepsOrder) {
  RingBuffer<int> ring;
  // Fill to the initial capacity (8), then interleave pops and pushes so
  // the occupied window wraps the physical end of the backing array many
  // times without ever triggering growth.
  int next_in = 0, next_out = 0;
  for (; next_in < 8; ++next_in) ring.push_back(next_in);
  EXPECT_EQ(ring.capacity(), 8u);
  for (int round = 0; round < 100; ++round) {
    EXPECT_EQ(ring.front(), next_out);
    ring.pop_front();
    ++next_out;
    ring.push_back(next_in++);
    EXPECT_EQ(ring.back(), next_in - 1);
    EXPECT_EQ(ring.size(), 8u);
  }
  EXPECT_EQ(ring.capacity(), 8u);  // steady state never reallocates
  while (!ring.empty()) {
    EXPECT_EQ(ring.front(), next_out++);
    ring.pop_front();
  }
}

TEST(RingBufferTest, GrowthRelinearizesWrappedContents) {
  RingBuffer<int> ring;
  // Create a wrapped window: fill, drain half, refill past the seam...
  for (int i = 0; i < 8; ++i) ring.push_back(i);
  for (int i = 0; i < 5; ++i) ring.pop_front();
  for (int i = 8; i < 13; ++i) ring.push_back(i);
  ASSERT_EQ(ring.capacity(), 8u);
  // ...then push through several doublings while the head is mid-array.
  for (int i = 13; i < 100; ++i) ring.push_back(i);
  EXPECT_EQ(ring.size(), 95u);
  for (int expected = 5; expected < 100; ++expected) {
    EXPECT_EQ(ring.front(), expected);
    ring.pop_front();
  }
  EXPECT_TRUE(ring.empty());
}

TEST(RingBufferTest, AtOffsetIndexesFromFrontAcrossSeam) {
  RingBuffer<int> ring;
  for (int i = 0; i < 8; ++i) ring.push_back(i);
  for (int i = 0; i < 6; ++i) ring.pop_front();
  for (int i = 8; i < 12; ++i) ring.push_back(i);  // window wraps the seam
  ASSERT_EQ(ring.size(), 6u);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.at_offset(i), static_cast<int>(6 + i));
  }
  EXPECT_EQ(ring.at_offset(0), ring.front());
  EXPECT_EQ(ring.at_offset(ring.size() - 1), ring.back());
}

TEST(RingBufferTest, PopReleasesHeldResources) {
  RingBuffer<std::shared_ptr<int>> ring;
  auto tracked = std::make_shared<int>(7);
  std::weak_ptr<int> watch = tracked;
  ring.push_back(std::move(tracked));
  ring.push_back(std::make_shared<int>(8));
  ring.pop_front();
  // The vacated slot must not keep the popped element alive.
  EXPECT_TRUE(watch.expired());
  EXPECT_EQ(*ring.front(), 8);
}

TEST(RingBufferTest, ClearEmptiesAndRemainsUsable) {
  RingBuffer<std::string> ring;
  for (int i = 0; i < 20; ++i) ring.push_back("payload-" + std::to_string(i));
  ring.clear();
  EXPECT_TRUE(ring.empty());
  ring.push_back("fresh");
  EXPECT_EQ(ring.front(), "fresh");
  EXPECT_EQ(ring.size(), 1u);
}

TEST(RingBufferTest, SurvivesLargeBacklogThenFullDrain) {
  // Shape of a PFC pause pile-up: a long stretch of enqueues with no
  // dequeues, followed by a complete drain in order.
  RingBuffer<int> ring;
  constexpr int kBacklog = 10'000;
  for (int i = 0; i < kBacklog; ++i) ring.push_back(i);
  EXPECT_EQ(ring.size(), static_cast<std::size_t>(kBacklog));
  EXPECT_GE(ring.capacity(), ring.size());
  for (int i = 0; i < kBacklog; ++i) {
    ASSERT_EQ(ring.front(), i);
    ring.pop_front();
  }
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace src::common
