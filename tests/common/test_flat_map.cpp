#include "common/flat_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

namespace src::common {
namespace {

TEST(FlatMap64Test, StartsEmpty) {
  FlatMap64<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(0), nullptr);
  EXPECT_EQ(map.find(42), nullptr);
}

TEST(FlatMap64Test, InsertFindErase) {
  FlatMap64<int> map;
  map[7] = 70;
  map[9] = 90;
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.find(7), nullptr);
  EXPECT_EQ(*map.find(7), 70);
  EXPECT_EQ(map.find(8), nullptr);
  EXPECT_TRUE(map.erase(7));
  EXPECT_FALSE(map.erase(7));
  EXPECT_EQ(map.find(7), nullptr);
  ASSERT_NE(map.find(9), nullptr);
  EXPECT_EQ(*map.find(9), 90);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap64Test, ZeroIsAnOrdinaryKey) {
  // Flow key (dst=0, channel=0) is 0, so key 0 must not be a sentinel.
  FlatMap64<int> map;
  map[0] = 123;
  ASSERT_NE(map.find(0), nullptr);
  EXPECT_EQ(*map.find(0), 123);
  EXPECT_TRUE(map.erase(0));
  EXPECT_EQ(map.find(0), nullptr);
}

TEST(FlatMap64Test, SubscriptDefaultConstructsOnce) {
  FlatMap64<std::uint64_t> map;
  EXPECT_EQ(map[5], 0u);
  map[5] += 10;
  map[5] += 10;
  EXPECT_EQ(map[5], 20u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap64Test, InsertOrAssignOverwrites) {
  FlatMap64<int> map;
  map.insert_or_assign(3, 1);
  map.insert_or_assign(3, 2);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.find(3), 2);
}

TEST(FlatMap64Test, GrowthPreservesAllEntries) {
  FlatMap64<std::uint64_t> map;
  constexpr std::uint64_t kN = 10'000;  // forces many doublings past cap 16
  for (std::uint64_t k = 0; k < kN; ++k) map[k * 1'000'003] = k;
  EXPECT_EQ(map.size(), kN);
  for (std::uint64_t k = 0; k < kN; ++k) {
    ASSERT_NE(map.find(k * 1'000'003), nullptr);
    EXPECT_EQ(*map.find(k * 1'000'003), k);
  }
}

TEST(FlatMap64Test, BackwardShiftEraseKeepsProbeChainsIntact) {
  // Near-sequential keys (the real workload: flow ids, message ids) create
  // probe chains; erase from the middle of chains repeatedly and verify
  // against std::map as the oracle.
  FlatMap64<std::uint64_t> map;
  std::map<std::uint64_t, std::uint64_t> oracle;
  std::uint64_t state = 42;
  const auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (int step = 0; step < 50'000; ++step) {
    const std::uint64_t key = next() % 512;  // small space -> heavy reuse
    switch (next() % 3) {
      case 0:
        map[key] = static_cast<std::uint64_t>(step);
        oracle[key] = static_cast<std::uint64_t>(step);
        break;
      case 1:
        EXPECT_EQ(map.erase(key), oracle.erase(key) > 0);
        break;
      default: {
        const auto it = oracle.find(key);
        const std::uint64_t* found = map.find(key);
        if (it == oracle.end()) {
          EXPECT_EQ(found, nullptr);
        } else {
          ASSERT_NE(found, nullptr);
          EXPECT_EQ(*found, it->second);
        }
        break;
      }
    }
    EXPECT_EQ(map.size(), oracle.size());
  }
  // Full sweep at the end: every surviving key readable, nothing extra.
  for (const auto& [key, value] : oracle) {
    ASSERT_NE(map.find(key), nullptr);
    EXPECT_EQ(*map.find(key), value);
  }
}

TEST(FlatMap64Test, EraseOnEmptyMapIsSafe) {
  FlatMap64<int> map;
  EXPECT_FALSE(map.erase(1));
  map[1] = 1;
  map.erase(1);
  EXPECT_FALSE(map.erase(1));
  EXPECT_TRUE(map.empty());
}

}  // namespace
}  // namespace src::common
