#include "common/latency.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace src::common {
namespace {

TEST(LatencyRecorderTest, EmptyIsZero) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_DOUBLE_EQ(rec.p50_us(), 0.0);
  EXPECT_DOUBLE_EQ(rec.mean_us(), 0.0);
}

TEST(LatencyRecorderTest, SingleSample) {
  LatencyRecorder rec;
  rec.record(microseconds(100));
  EXPECT_EQ(rec.count(), 1u);
  EXPECT_NEAR(rec.mean_us(), 100.0, 1e-9);
  EXPECT_NEAR(rec.p50_us(), 100.0, 20.0);  // bucketed
  EXPECT_NEAR(rec.max_us(), 100.0, 1e-9);
}

TEST(LatencyRecorderTest, QuantilesOrdered) {
  LatencyRecorder rec;
  Rng rng(3);
  for (int i = 0; i < 100'000; ++i) {
    rec.record(microseconds(rng.lognormal_mean_scv(200.0, 2.0)));
  }
  EXPECT_LE(rec.p50_us(), rec.p99_us());
  EXPECT_LE(rec.p99_us(), rec.p999_us());
  EXPECT_LE(rec.p999_us(), rec.max_us() * 1.1);
}

TEST(LatencyRecorderTest, QuantileAccuracyWithinBucketError) {
  LatencyRecorder rec;
  Rng rng(4);
  for (int i = 0; i < 200'000; ++i) {
    rec.record(microseconds(rng.exponential(500.0)));
  }
  // Exponential: p50 = 500*ln2 = 346.6, p99 = 500*ln100 = 2302.6.
  EXPECT_NEAR(rec.p50_us(), 500.0 * std::log(2.0), 500.0 * std::log(2.0) * 0.2);
  EXPECT_NEAR(rec.p99_us(), 500.0 * std::log(100.0), 500.0 * std::log(100.0) * 0.2);
}

TEST(LatencyRecorderTest, SubMicrosecondClampsToFirstBucket) {
  LatencyRecorder rec;
  rec.record(10);  // 10 ns
  EXPECT_EQ(rec.count(), 1u);
  EXPECT_GT(rec.p50_us(), 0.0);
}

TEST(LatencyRecorderTest, MergeEqualsUnion) {
  LatencyRecorder a, b, all;
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const SimTime latency = microseconds(rng.exponential(300.0));
    (i % 2 ? a : b).record(latency);
    all.record(latency);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.p99_us(), all.p99_us());
  EXPECT_NEAR(a.mean_us(), all.mean_us(), 1e-9);
}

TEST(LatencyRecorderTest, DriverPopulatesPercentiles) {
  // Smoke: the NVMe driver fills the recorders.
  // (Full driver behaviour is covered in tests/nvme.)
  LatencyRecorder rec;
  for (int i = 0; i < 100; ++i) rec.record(microseconds(75.0 + i));
  EXPECT_GT(rec.p99_us(), rec.p50_us() * 0.9);
}

}  // namespace
}  // namespace src::common
