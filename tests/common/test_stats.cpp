#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace src::common {
namespace {

TEST(RunningStatsTest, MeanVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStatsTest, ScvOfConstantIsZero) {
  RunningStats s;
  for (int i = 0; i < 10; ++i) s.add(3.0);
  EXPECT_DOUBLE_EQ(s.scv(), 0.0);
  EXPECT_DOUBLE_EQ(s.skewness(), 0.0);
}

TEST(RunningStatsTest, ScvMatchesDefinition) {
  RunningStats s;
  Rng rng(11);
  for (int i = 0; i < 100'000; ++i) s.add(rng.exponential(5.0));
  EXPECT_NEAR(s.scv(), s.variance() / (s.mean() * s.mean()), 1e-12);
}

TEST(RunningStatsTest, SkewnessSignOfExponential) {
  RunningStats s;
  Rng rng(12);
  for (int i = 0; i < 100'000; ++i) s.add(rng.exponential(1.0));
  EXPECT_NEAR(s.skewness(), 2.0, 0.15);  // exponential skewness = 2
}

TEST(RunningStatsTest, MergeEqualsConcatenation) {
  RunningStats a, b, all;
  Rng rng(13);
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.normal(2.0, 3.0);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_NEAR(a.skewness(), all.skewness(), 1e-6);
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(Lag1AutocorrelationTest, IidIsNearZero) {
  Lag1Autocorrelation ac;
  Rng rng(14);
  for (int i = 0; i < 100'000; ++i) ac.add(rng.uniform());
  EXPECT_NEAR(ac.value(), 0.0, 0.02);
}

TEST(Lag1AutocorrelationTest, AlternatingIsNegative) {
  Lag1Autocorrelation ac;
  for (int i = 0; i < 1'000; ++i) ac.add(i % 2 ? 1.0 : -1.0);
  EXPECT_LT(ac.value(), -0.9);
}

TEST(Lag1AutocorrelationTest, SmoothSeriesIsPositive) {
  Lag1Autocorrelation ac;
  Rng rng(15);
  double x = 0.0;
  for (int i = 0; i < 100'000; ++i) {
    x = 0.95 * x + rng.normal();  // AR(1), rho ~ 0.95
    ac.add(x);
  }
  EXPECT_GT(ac.value(), 0.9);
}

TEST(HistogramTest, QuantileAndClamping) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
  h.add(-5.0);   // clamps to first bucket
  h.add(500.0);  // clamps to last bucket
  EXPECT_EQ(h.bucket(0), 11u);
  EXPECT_EQ(h.bucket(9), 11u);
}

TEST(ThroughputTimelineTest, BinningAndRates) {
  ThroughputTimeline tl(kMillisecond);
  tl.record(0, 1000);
  tl.record(kMillisecond / 2, 1000);
  tl.record(3 * kMillisecond, 500);
  EXPECT_EQ(tl.bin_count(), 4u);
  EXPECT_EQ(tl.bin_bytes(0), 2000u);
  EXPECT_EQ(tl.bin_bytes(1), 0u);
  EXPECT_EQ(tl.bin_bytes(3), 500u);
  EXPECT_DOUBLE_EQ(tl.bin_rate(0).as_bytes_per_second(), 2000.0 / 1e-3);
  EXPECT_EQ(tl.total_bytes(), 2500u);
}

TEST(ThroughputTimelineTest, TrimmedMeanDropsEdges) {
  ThroughputTimeline tl(kMillisecond);
  // 10 bins: huge first and last bins, constant middle.
  tl.record(0, 1'000'000);
  for (int i = 1; i < 9; ++i) tl.record(i * kMillisecond, 1000);
  tl.record(9 * kMillisecond, 1'000'000);
  const double rate = tl.trimmed_mean_rate(0.1, 0.1).as_bytes_per_second();
  EXPECT_DOUBLE_EQ(rate, 1000.0 / 1e-3);
}

TEST(ThroughputTimelineTest, MergeAddsBinwise) {
  ThroughputTimeline a(kMillisecond), b(kMillisecond);
  a.record(0, 10);
  b.record(0, 5);
  b.record(2 * kMillisecond, 7);
  a.merge(b);
  EXPECT_EQ(a.bin_bytes(0), 15u);
  EXPECT_EQ(a.bin_bytes(2), 7u);
}

TEST(EventTimelineTest, CountsAndMerge) {
  EventTimeline a(kMillisecond), b(kMillisecond);
  a.record(0);
  a.record(100);
  b.record(kMillisecond, 3);
  a.merge(b);
  EXPECT_EQ(a.bin(0), 2u);
  EXPECT_EQ(a.bin(1), 3u);
  EXPECT_EQ(a.total(), 5u);
}

}  // namespace
}  // namespace src::common
