#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace src::common {
namespace {

TEST(TextTableTest, RendersHeadersAndRows) {
  TextTable table({"Model", "Accuracy"});
  table.add_row({"Random Forest", "0.94"});
  table.add_row({"Linear", "0.77"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Model"), std::string::npos);
  EXPECT_NE(out.find("Random Forest"), std::string::npos);
  EXPECT_NE(out.find("0.94"), std::string::npos);
}

TEST(TextTableTest, HandlesShortRows) {
  TextTable table({"a", "b", "c"});
  table.add_row({"only-one"});
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(FmtTest, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace src::common
