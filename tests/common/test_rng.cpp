#include "common/rng.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace src::common {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng parent1(7);
  Rng parent2(7);
  Rng child1 = parent1.fork();
  Rng child2 = parent2.fork();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRange) {
  Rng rng(4);
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(RngTest, UniformIndexBounds) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(rng.uniform_index(17), 17u);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(6);
  RunningStats stats;
  for (int i = 0; i < 200'000; ++i) stats.add(rng.exponential(10.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.2);
  // Exponential SCV = 1.
  EXPECT_NEAR(stats.scv(), 1.0, 0.05);
}

TEST(RngTest, NormalMoments) {
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 200'000; ++i) stats.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, LognormalMeanScv) {
  Rng rng(8);
  RunningStats stats;
  for (int i = 0; i < 400'000; ++i) stats.add(rng.lognormal_mean_scv(32.0, 0.5));
  EXPECT_NEAR(stats.mean(), 32.0, 0.7);
  EXPECT_NEAR(stats.scv(), 0.5, 0.08);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / 100'000.0, 0.3, 0.01);
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  std::uint64_t state2 = 0;
  EXPECT_EQ(splitmix64(state2), first);
}

}  // namespace
}  // namespace src::common
