// LaneGroup: the conservative sharded event engine (DESIGN.md §14). These
// run under `-L unit`, which the tsan CI job executes — the multi-lane
// cases double as the cross-lane mailbox data-race check.
#include "sim/lane.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace src::sim {
namespace {

using common::SimTime;

TEST(LaneGroupTest, LaneCountClampsToShardCount) {
  LaneGroup lanes(3, 16);
  EXPECT_EQ(lanes.shard_count(), 3u);
  EXPECT_EQ(lanes.lane_count(), 3u);
  LaneGroup serial(4, 0);
  EXPECT_EQ(serial.lane_count(), 1u);
}

TEST(LaneGroupTest, LookaheadMustBePositive) {
  LaneGroup lanes(2, 1);
  EXPECT_THROW(lanes.set_lookahead(0), std::invalid_argument);
  lanes.set_lookahead(5);
  EXPECT_EQ(lanes.lookahead(), 5);
}

TEST(LaneGroupTest, SameShardPostSchedulesDirectly) {
  LaneGroup lanes(2, 1);
  lanes.set_lookahead(10);
  std::vector<int> order;
  // Same-shard posts ignore the lookahead: they go straight into the
  // shard's own calendar.
  lanes.post(0, 0, 3, Simulator::Callback([&order] { order.push_back(3); }));
  lanes.post(0, 0, 1, Simulator::Callback([&order] { order.push_back(1); }));
  lanes.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_EQ(lanes.cross_shard_messages(), 0u);
  EXPECT_TRUE(lanes.drained());
}

TEST(LaneGroupTest, CrossShardPostBelowLookaheadThrows) {
  LaneGroup lanes(2, 1);
  lanes.set_lookahead(10);
  // From shard 0 at t=0, the earliest legal cross-shard delivery is t=10.
  EXPECT_THROW(
      lanes.post(0, 1, 9, Simulator::Callback([] {})),
      std::logic_error);
  lanes.post(0, 1, 10, Simulator::Callback([] {}));
  lanes.run_until(100);
  EXPECT_EQ(lanes.cross_shard_messages(), 1u);
}

// The determinism contract: deliveries landing at the same destination
// time drain in (when, src_shard, post_seq) order, independent of which
// lane executed the sources.
TEST(LaneGroupTest, MailboxMergeOrderIsWhenSrcSeq) {
  for (const std::size_t lane_count : {1u, 2u, 3u}) {
    LaneGroup lanes(3, lane_count);
    lanes.set_lookahead(10);
    std::vector<std::pair<int, int>> order;  // (src, seq-within-src)
    // Shards 1 and 2 each post two deliveries to shard 0, all at t=10.
    for (const std::size_t src : {1u, 2u}) {
      lanes.kernel(src).schedule_at(0, [&lanes, &order, src] {
        for (int i = 0; i < 2; ++i) {
          lanes.post(src, 0, 10,
                     Simulator::Callback([&order, src, i] {
                       order.emplace_back(static_cast<int>(src), i);
                     }));
        }
      });
    }
    lanes.run_until(100);
    const std::vector<std::pair<int, int>> want = {
        {1, 0}, {1, 1}, {2, 0}, {2, 1}};
    EXPECT_EQ(order, want) << "lane_count=" << lane_count;
    EXPECT_EQ(lanes.cross_shard_messages(), 4u);
  }
}

// Two shards ping-pong a token through the mailboxes; the hop count and
// final clock must match the analytic value at every lane count.
TEST(LaneGroupTest, CrossShardPingPong) {
  for (const std::size_t lane_count : {1u, 2u}) {
    LaneGroup lanes(2, lane_count);
    const SimTime hop = 7;
    lanes.set_lookahead(hop);
    int hops = 0;
    // Self-referential bounce: declared std::function so the lambda can
    // capture itself by reference.
    std::function<void(std::size_t)> bounce = [&](std::size_t at) {
      ++hops;
      if (hops >= 20) return;
      const std::size_t to = 1 - at;
      lanes.post(at, to, lanes.kernel(at).now() + hop,
                 Simulator::Callback([&bounce, to] { bounce(to); }));
    };
    lanes.kernel(0).schedule_at(0, [&bounce] { bounce(0); });
    // First hop fires at t=0 on shard 0; hop k fires at t=k*hop, so the
    // 20th and last lands at 19*hop. Run exactly that far: drained kernels
    // then advance to the deadline, like a lone Simulator's run_until.
    lanes.run_until(19 * hop);
    EXPECT_EQ(hops, 20) << "lane_count=" << lane_count;
    EXPECT_TRUE(lanes.drained());
    EXPECT_EQ(lanes.now(), 19 * hop);
    EXPECT_EQ(lanes.cross_shard_messages(), 19u);
  }
}

// run_until leaves all lanes quiescent: the caller may inspect and mutate
// shard state between calls, and events exactly at the deadline execute.
TEST(LaneGroupTest, RunUntilIsInclusiveAndResumable) {
  LaneGroup lanes(2, 2);
  lanes.set_lookahead(10);
  std::vector<SimTime> fired;
  for (const SimTime t : {5, 50, 55}) {
    lanes.kernel(1).schedule_at(t, [&fired, t] { fired.push_back(t); });
  }
  lanes.run_until(50);
  EXPECT_EQ(fired, (std::vector<SimTime>{5, 50}));
  EXPECT_FALSE(lanes.drained());
  // Quiescent gap: schedule more work, then resume.
  lanes.kernel(0).schedule_at(52, [&fired] { fired.push_back(52); });
  lanes.run_until(100);
  EXPECT_EQ(fired, (std::vector<SimTime>{5, 50, 52, 55}));
  EXPECT_TRUE(lanes.drained());
  EXPECT_EQ(lanes.now(), 100);
}

// Heavier cross-lane traffic for tsan: eight tokens circulate over four
// shards with different strides, so every (src, dst) mailbox pair carries
// concurrent traffic for many windows. The checksum is lane-count
// invariant.
TEST(LaneGroupTest, CirculatingTokensAreLaneCountInvariant) {
  std::uint64_t want_sum = 0;
  std::uint64_t want_events = 0;
  for (const std::size_t lane_count : {1u, 4u}) {
    constexpr std::size_t kShards = 4;
    LaneGroup lanes(kShards, lane_count);
    lanes.set_lookahead(3);
    std::uint64_t sums[kShards] = {};
    std::function<void(std::size_t, std::size_t, int)> hop =
        [&](std::size_t at, std::size_t stride, int round) {
          sums[at] += static_cast<std::uint64_t>(round + 1) * (at + 1);
          if (round >= 200) return;
          const std::size_t dst = (at + stride) % kShards;
          lanes.post(at, dst, lanes.kernel(at).now() + 3,
                     Simulator::Callback([&hop, dst, stride, round] {
                       hop(dst, stride, round + 1);
                     }));
        };
    for (std::size_t s = 0; s < kShards; ++s) {
      for (const std::size_t stride : {1u, 3u}) {
        lanes.kernel(s).schedule_at(0, [&hop, s, stride] { hop(s, stride, 0); });
      }
    }
    lanes.run_until(common::kSecond);
    std::uint64_t sum = 0;
    for (const std::uint64_t s : sums) sum += s;
    if (lane_count == 1) {
      want_sum = sum;
      want_events = lanes.executed_events();
      EXPECT_GT(sum, 0u);
    } else {
      EXPECT_EQ(sum, want_sum);
      EXPECT_EQ(lanes.executed_events(), want_events);
    }
  }
}

}  // namespace
}  // namespace src::sim
