#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "common/rng.hpp"

namespace src::sim {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(SimulatorTest, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, ScheduleInIsRelative) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_in(50, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(SimulatorTest, PastEventsClampToNow) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_at(10, [&] { fired_at = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(10, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(SimulatorTest, CancelInvalidIdIsSafe) {
  Simulator sim;
  sim.cancel(EventId{});
  sim.schedule_at(1, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(SimulatorTest, CancelFromWithinEvent) {
  Simulator sim;
  bool second_fired = false;
  const EventId second = sim.schedule_at(20, [&] { second_fired = true; });
  sim.schedule_at(10, [&] { sim.cancel(second); });
  sim.run();
  EXPECT_FALSE(second_fired);
}

TEST(SimulatorTest, RunUntilStopsAtDeadlineInclusive) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(10, [&] { ++count; });
  sim.schedule_at(20, [&] { ++count; });
  sim.schedule_at(21, [&] { ++count; });
  sim.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(SimulatorTest, RunUntilAdvancesClockWhenEmpty) {
  Simulator sim;
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(SimulatorTest, StepReturnsFalseWhenDrained) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_in(1, chain);
  };
  sim.schedule_at(0, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99);
}

// Regression: cancelling an id whose event already fired used to insert a
// tombstone that nothing ever reclaimed (the old unordered_set design grew
// without bound under handle-cancelling drivers). A stale cancel must be a
// pure no-op.
TEST(SimulatorTest, CancelAfterFireIsNoOpAndDoesNotLeak) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(sim.schedule_at(i, [] {}));
  }
  sim.run();
  EXPECT_EQ(sim.executed_events(), 1000u);
  const std::size_t slots_before = sim.slot_count();
  for (const EventId id : ids) sim.cancel(id);  // all already fired
  EXPECT_EQ(sim.cancelled_pending(), 0u);
  EXPECT_EQ(sim.slot_count(), slots_before);
  // The calendar still works and reuses the retired slots.
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    sim.schedule_in(1, [&] { ++fired; });
  }
  sim.run();
  EXPECT_EQ(fired, 1000);
  EXPECT_EQ(sim.slot_count(), slots_before);
}

TEST(SimulatorTest, CancelTwiceCountsOnce) {
  Simulator sim;
  const EventId id = sim.schedule_at(10, [] {});
  sim.cancel(id);
  sim.cancel(id);
  EXPECT_EQ(sim.cancelled_pending(), 1u);
  sim.run();
  EXPECT_EQ(sim.cancelled_pending(), 0u);
  EXPECT_EQ(sim.executed_events(), 0u);
}

// A handle outliving its event must not be able to kill an unrelated event
// that happens to reuse the same arena slot (no ABA).
TEST(SimulatorTest, StaleHandleCannotCancelRecycledSlot) {
  Simulator sim;
  const EventId first = sim.schedule_at(1, [] {});
  sim.run();
  bool second_fired = false;
  sim.schedule_at(2, [&] { second_fired = true; });  // reuses first's slot
  EXPECT_EQ(sim.slot_count(), 1u);
  sim.cancel(first);  // stale: must not touch the new occupant
  sim.run();
  EXPECT_TRUE(second_fired);
}

// The slot arena is bounded by peak concurrency, not by total events.
TEST(SimulatorTest, SlotArenaBoundedByPeakPendingEvents) {
  Simulator sim;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 10; ++i) {
      sim.schedule_in(i, [] {});
    }
    sim.run();
  }
  EXPECT_EQ(sim.executed_events(), 1000u);
  EXPECT_LE(sim.slot_count(), 10u);
}

// Closures above the inline buffer take the boxed path; they must execute
// and destruct exactly like small ones.
TEST(SimulatorTest, OversizedClosuresExecute) {
  struct Big {
    std::uint64_t payload[16] = {};
  };
  static_assert(sizeof(Big) > kCallbackInlineBytes);
  Simulator sim;
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    Big big;
    big.payload[7] = i;
    sim.schedule_at(static_cast<SimTime>(i), [big, &sum] { sum += big.payload[7]; });
  }
  sim.run();
  EXPECT_EQ(sum, 99u * 100u / 2);
}

TEST(SimulatorTest, ManyEventsStressOrdering) {
  Simulator sim;
  SimTime last = -1;
  bool monotonic = true;
  std::uint64_t state = 99;
  for (int i = 0; i < 20'000; ++i) {
    const auto when = static_cast<SimTime>(common::splitmix64(state) % 1'000'000);
    sim.schedule_at(when, [&, when] {
      if (when < last) monotonic = false;
      last = when;
    });
  }
  sim.run();
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(sim.executed_events(), 20'000u);
}

}  // namespace
}  // namespace src::sim
