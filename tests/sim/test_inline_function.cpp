#include "sim/inline_function.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace src::sim {
namespace {

using Fn = InlineFunction<64>;

TEST(InlineFunctionTest, EmptyByDefault) {
  Fn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_FALSE(fn.inline_stored());
  fn.reset();  // reset on empty is a no-op
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFunctionTest, SmallCallableStaysInline) {
  int hits = 0;
  Fn fn([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_TRUE(fn.inline_stored());
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunctionTest, OversizedCallableFallsBackToHeap) {
  struct Big {
    std::uint64_t payload[16] = {};
  };
  static_assert(sizeof(Big) > Fn::inline_capacity());
  Big big;
  big.payload[3] = 42;
  std::uint64_t seen = 0;
  Fn fn([big, &seen] { seen = big.payload[3]; });
  EXPECT_FALSE(fn.inline_stored());
  fn();
  EXPECT_EQ(seen, 42u);
}

TEST(InlineFunctionTest, MoveTransfersOwnership) {
  int hits = 0;
  Fn a([&hits] { ++hits; });
  Fn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  Fn c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunctionTest, MoveAssignDestroysPreviousTarget) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> alive = token;
  Fn a([token] { (void)token; });
  token.reset();
  EXPECT_FALSE(alive.expired());
  a = Fn([] {});  // old capture must be destroyed here
  EXPECT_TRUE(alive.expired());
}

TEST(InlineFunctionTest, DestructorReleasesCapture) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> alive = token;
  {
    Fn fn([token] { (void)token; });
    token.reset();
    EXPECT_FALSE(alive.expired());
  }
  EXPECT_TRUE(alive.expired());
}

TEST(InlineFunctionTest, ResetReleasesHeapBoxedCapture) {
  struct Big {
    std::shared_ptr<int> token;
    std::uint64_t pad[16] = {};
    void operator()() const {}
  };
  static_assert(sizeof(Big) > Fn::inline_capacity());
  auto token = std::make_shared<int>(9);
  std::weak_ptr<int> alive = token;
  Fn fn(Big{token});
  token.reset();
  EXPECT_FALSE(fn.inline_stored());
  EXPECT_FALSE(alive.expired());
  fn.reset();
  EXPECT_TRUE(alive.expired());
  EXPECT_FALSE(static_cast<bool>(fn));
}

// A callable whose move constructor may throw must not use the inline
// buffer: relocation is noexcept by contract.
TEST(InlineFunctionTest, ThrowingMoveCallableIsBoxed) {
  struct ThrowingMove {
    ThrowingMove() = default;
    ThrowingMove(ThrowingMove&&) {}  // NOLINT: intentionally not noexcept
    void operator()() const {}
  };
  static_assert(sizeof(ThrowingMove) <= Fn::inline_capacity());
  Fn fn{ThrowingMove{}};
  EXPECT_FALSE(fn.inline_stored());
  fn();
}

// Containers of InlineFunction must survive reallocation (the simulator's
// slot arena grows while closures are parked in it).
TEST(InlineFunctionTest, SurvivesVectorGrowth) {
  std::vector<Fn> fns;
  int total = 0;
  for (int i = 0; i < 100; ++i) {
    fns.emplace_back([&total, i] { total += i; });
  }
  for (auto& fn : fns) fn();
  EXPECT_EQ(total, 99 * 100 / 2);
}

}  // namespace
}  // namespace src::sim
