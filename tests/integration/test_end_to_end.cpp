// End-to-end integration tests: the full pipeline — workload generation,
// NVMe-oF fabric over the congested network, SSD arrays, and the SRC
// control loop — reproducing the paper's headline claims at test scale.
#include <gtest/gtest.h>

#include "core/presets.hpp"

namespace src::core {
namespace {

// One trained TPM shared by every test in this binary (training costs ~1 s).
class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { tpm_ = new Tpm(train_default_tpm(ssd::ssd_a())); }
  static void TearDownTestSuite() {
    delete tpm_;
    tpm_ = nullptr;
  }
  static Tpm* tpm_;
};

Tpm* EndToEndTest::tpm_ = nullptr;

TEST_F(EndToEndTest, TpmIsAccurate) {
  // Table I headline: the Random Forest TPM is a good predictor.
  const auto data = collect_training_data(ssd::ssd_a(), default_training_grid());
  const auto [train, test] = data.split(0.6, 42);
  Tpm tpm;
  tpm.fit(train);
  const auto [read_r2, write_r2] = tpm.score(test);
  EXPECT_GT(read_r2, 0.75);
  EXPECT_GT(write_r2, 0.75);
}

TEST_F(EndToEndTest, DcqcnOnlyStarvesWrites) {
  // The paper's motivating pathology: under inbound congestion, DCQCN-only
  // keeps the SSD busy with reads whose data strands in the TXQ, while
  // writes starve at the device.
  const auto result = run_experiment(vdi_experiment(false, nullptr));
  EXPECT_GT(result.total_cnps, 0u);  // congestion actually happened
  EXPECT_LT(result.write_rate.as_gbps(), result.read_rate.as_gbps() / 2.0);
}

TEST_F(EndToEndTest, SrcImprovesAggregateThroughput) {
  // The headline Fig. 7 result: DCQCN-SRC preserves aggregate throughput
  // that DCQCN-only sacrifices.
  const auto baseline = run_experiment(vdi_experiment(false, nullptr));
  const auto with_src = run_experiment(vdi_experiment(true, tpm_));
  EXPECT_GT(with_src.aggregate_rate().as_bytes_per_second(),
            1.1 * baseline.aggregate_rate().as_bytes_per_second());
  // The gain comes from writes, not from cheating on reads.
  EXPECT_GT(with_src.write_rate.as_bytes_per_second(),
            1.5 * baseline.write_rate.as_bytes_per_second());
}

TEST_F(EndToEndTest, SrcControllerActuallyAdjusts) {
  const auto result = run_experiment(vdi_experiment(true, tpm_));
  EXPECT_FALSE(result.adjustments.empty());
}

TEST_F(EndToEndTest, CongestionSignalsRecorded) {
  // Fig. 8's metric: congestion signals received by targets, binned per ms.
  const auto result = run_experiment(vdi_experiment(false, nullptr));
  EXPECT_GT(result.pause_timeline.total(), 0u);
  EXPECT_GT(result.pause_timeline.bin_count(), 10u);
}

TEST_F(EndToEndTest, LightWorkloadSeesNoSrcEffect) {
  // Fig. 10-a: when both the network and the SSD are underloaded, SRC and
  // DCQCN-only are indistinguishable.
  const auto baseline =
      run_experiment(intensity_experiment(Intensity::kLight, false, nullptr));
  const auto with_src =
      run_experiment(intensity_experiment(Intensity::kLight, true, tpm_));
  const double rel =
      std::abs(with_src.aggregate_rate().as_bytes_per_second() -
               baseline.aggregate_rate().as_bytes_per_second()) /
      baseline.aggregate_rate().as_bytes_per_second();
  EXPECT_LT(rel, 0.10);
}

TEST_F(EndToEndTest, HeavyWorkloadSeesLargeSrcEffect) {
  // Fig. 10-c.
  const auto baseline =
      run_experiment(intensity_experiment(Intensity::kHeavy, false, nullptr));
  const auto with_src =
      run_experiment(intensity_experiment(Intensity::kHeavy, true, tpm_));
  EXPECT_GT(with_src.write_rate.as_bytes_per_second(),
            2.0 * baseline.write_rate.as_bytes_per_second());
}

TEST_F(EndToEndTest, IncastImprovementFadesWithRatio) {
  // Table IV's trend: the SRC improvement at in-cast ratio 2:1 exceeds the
  // improvement at 4:1 (where per-target load is too light for WRR).
  auto improvement = [&](std::size_t targets, std::size_t initiators) {
    const auto only =
        run_experiment(incast_experiment(targets, initiators, false, nullptr));
    const auto with =
        run_experiment(incast_experiment(targets, initiators, true, tpm_));
    return (with.aggregate_rate().as_bytes_per_second() -
            only.aggregate_rate().as_bytes_per_second()) /
           only.aggregate_rate().as_bytes_per_second();
  };
  EXPECT_GT(improvement(2, 1), improvement(4, 1));
}

TEST_F(EndToEndTest, ExperimentsAreDeterministic) {
  const auto a = run_experiment(vdi_experiment(false, nullptr));
  const auto b = run_experiment(vdi_experiment(false, nullptr));
  EXPECT_DOUBLE_EQ(a.read_rate.as_bytes_per_second(), b.read_rate.as_bytes_per_second());
  EXPECT_DOUBLE_EQ(a.write_rate.as_bytes_per_second(), b.write_rate.as_bytes_per_second());
  EXPECT_EQ(a.total_cnps, b.total_cnps);
}

TEST_F(EndToEndTest, SrcDoesNotRegressWriteHeavyWorkloads) {
  // The converse regime (CBS-like write-dominated traffic): SRC's premise
  // — stranded read capacity — is absent, and it must not hurt. (It in
  // fact helps slightly: the separate read queue shields reads from the
  // write flood; see bench/analysis_cbs.)
  auto configure = [&](bool use_src) {
    auto config = vdi_experiment(use_src, use_src ? tpm_ : nullptr);
    config.max_time = 100 * common::kMillisecond;
    config.trace_for = [](std::size_t index) {
      workload::SyntheticParams params = workload::tencent_cbs_like(4000);
      params.write.mean_iat_us = 16.0;
      params.read.mean_iat_us = 30.0;
      params.read.count = 2000;
      return workload::generate_synthetic(params, 77 + index);
    };
    return config;
  };
  const auto baseline = run_experiment(configure(false));
  const auto with_src = run_experiment(configure(true));
  EXPECT_GE(with_src.aggregate_rate().as_bytes_per_second(),
            0.9 * baseline.aggregate_rate().as_bytes_per_second());
}

TEST_F(EndToEndTest, SrcThroughputGainIsNotPaidInReadLatency) {
  // analysis_latency's finding, pinned: under the VDI experiment SRC must
  // not inflate read latency materially while it slashes write latency.
  const auto baseline = run_experiment(vdi_experiment(false, nullptr));
  const auto with_src = run_experiment(vdi_experiment(true, tpm_));
  EXPECT_LT(with_src.read_latency.p50_us(), 1.3 * baseline.read_latency.p50_us());
  EXPECT_LT(with_src.write_latency.p50_us(), 0.7 * baseline.write_latency.p50_us());
}

TEST_F(EndToEndTest, SrcModeRequiresFittedTpm) {
  EXPECT_THROW(run_experiment(vdi_experiment(true, nullptr)), std::invalid_argument);
  Tpm unfitted;
  EXPECT_THROW(run_experiment(vdi_experiment(true, &unfitted)), std::invalid_argument);
}

}  // namespace
}  // namespace src::core
