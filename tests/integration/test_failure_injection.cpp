// Failure-injection tests: the system must stay functional and recover when
// links brown out or devices degrade mid-run.
#include <gtest/gtest.h>

#include "core/presets.hpp"
#include "fabric/initiator.hpp"
#include "fabric/target.hpp"
#include "net/topology.hpp"
#include "nvme/fifo_driver.hpp"
#include "workload/micro.hpp"

namespace src {
namespace {

using common::IoType;
using common::Rate;

TEST(FailureInjectionTest, LinkBrownoutThrottlesAndRecovers) {
  sim::Simulator sim;
  net::NetConfig config;
  config.dcqcn.enabled = false;  // isolate the physical effect
  net::Network net(sim, config);
  const auto topo = net::make_star(net, 2, Rate::gbps(10.0), common::kMicrosecond);

  common::ThroughputTimeline received{common::kMillisecond};
  net.host(topo.hosts[1]).set_data_handler(
      [&](net::NodeId, std::uint32_t bytes, std::uint32_t) {
        received.record(sim.now(), bytes);
      });
  net.host(topo.hosts[0]).send_message(topo.hosts[1], 30'000'000);

  // Brownout: at 5 ms the sender's uplink drops to 1 Gbps; at 15 ms it
  // recovers. (Both the host uplink and the hub's matching egress degrade,
  // as with a renegotiated link speed.)
  sim.schedule_at(5 * common::kMillisecond, [&] {
    net.host(topo.hosts[0]).port(0).set_rate(Rate::gbps(1.0));
  });
  sim.schedule_at(15 * common::kMillisecond, [&] {
    net.host(topo.hosts[0]).port(0).set_rate(Rate::gbps(10.0));
  });
  sim.run();

  // Healthy-phase bins run near 10 Gbps; brownout bins near 1 Gbps.
  const double healthy = received.bin_rate(2).as_gbps();
  const double degraded = received.bin_rate(10).as_gbps();
  const double recovered = received.bin_rate(17).as_gbps();
  EXPECT_GT(healthy, 5.0);
  EXPECT_LT(degraded, 2.0);
  EXPECT_GT(recovered, 5.0);
  // Losslessness: everything still arrives.
  EXPECT_EQ(net.host(topo.hosts[1]).stats().bytes_received, 30'000'000u);
}

TEST(FailureInjectionTest, DeviceSlowdownShowsInLatency) {
  sim::Simulator sim;
  ssd::SsdDevice device(sim, ssd::ssd_a(), 1);
  nvme::FifoDriver driver(sim, device);
  std::vector<double> latencies_us;
  driver.set_completion_handler(
      [&](const nvme::IoRequest& request, const ssd::NvmeCompletion& completion) {
        latencies_us.push_back(
            common::to_microseconds(completion.complete_time - request.arrival));
      });

  auto submit_read = [&](std::uint64_t lba) {
    nvme::IoRequest request;
    request.type = IoType::kRead;
    request.lba = lba;
    request.bytes = 16384;
    request.arrival = sim.now();
    driver.submit(request);
  };

  submit_read(0);
  sim.run();
  const double healthy = latencies_us.back();

  device.inject_latency_scale(4.0);
  submit_read(1 << 20);
  sim.run();
  const double degraded = latencies_us.back();

  device.inject_latency_scale(1.0);
  submit_read(2 << 20);
  sim.run();
  const double recovered = latencies_us.back();

  EXPECT_GT(degraded, 2.0 * healthy);
  EXPECT_LT(recovered, 1.5 * healthy);
}

TEST(FailureInjectionTest, FabricSurvivesTargetDeviceDegradation) {
  // A full NVMe-oF rig where one target's SSD degrades 4x mid-run: every
  // request must still complete, and the degraded target must not wedge
  // the other one.
  sim::Simulator sim;
  net::Network network(sim, net::NetConfig{});
  const auto topo = net::make_star(network, 3, Rate::gbps(10.0), common::kMicrosecond);
  fabric::FabricContext context;
  fabric::Initiator initiator(network, topo.hosts[0], context);
  fabric::TargetConfig target_config;
  fabric::Target healthy(network, topo.hosts[1], context, target_config);
  fabric::Target degrading(network, topo.hosts[2], context, target_config);

  workload::MicroParams params = workload::symmetric_micro(40.0, 16.0 * 1024, 600);
  const auto trace = workload::generate_micro(params, 3);
  initiator.run_trace(trace, [&](const workload::TraceRecord&, std::size_t i) {
    return i % 2 ? healthy.node_id() : degrading.node_id();
  });
  sim.schedule_at(5 * common::kMillisecond,
                  [&] { degrading.device(0).inject_latency_scale(4.0); });
  sim.run_until(2 * common::kSecond);

  EXPECT_TRUE(initiator.all_complete());
  EXPECT_GT(healthy.stats().reads_served, 0u);
  EXPECT_GT(degrading.stats().reads_served, 0u);
}

TEST(FailureInjectionTest, SrcControlLoopSurvivesDeviceDegradation) {
  // The TPM was trained on the healthy device; after degradation its
  // predictions are biased, but Algorithm 1 must keep producing valid
  // weights and the experiment must complete.
  const core::Tpm tpm = core::train_default_tpm(ssd::ssd_a(), 21);

  auto config = core::vdi_experiment(true, &tpm);
  config.max_time = 80 * common::kMillisecond;
  const auto result = core::run_experiment(config);
  EXPECT_FALSE(result.adjustments.empty());
  for (const auto& adjustment : result.adjustments) {
    EXPECT_GE(adjustment.weight_ratio, 1u);
    EXPECT_LE(adjustment.weight_ratio, 64u);
  }
}

TEST(FailureInjectionTest, EcmpSpreadsFlowsAcrossClosPaths) {
  // Multi-path sanity: in a Clos with 2 leaves per pod, cross-pod flows
  // from many sources must not all hash onto one leaf.
  sim::Simulator sim;
  net::Network network(sim, net::NetConfig{});
  net::ClosParams params;
  params.pods = 2;
  params.leaves_per_pod = 2;
  params.tors_per_pod = 2;
  params.hosts_per_tor = 4;
  const auto topo = net::make_clos(network, params);

  // Each ToR must see 2 equal-cost routes toward a cross-pod host.
  const net::NodeId remote = topo.hosts.back();
  EXPECT_EQ(network.switch_at(topo.tors.front()).route_count(remote), 2u);

  for (std::size_t i = 0; i + 1 < topo.hosts.size() / 2; ++i) {
    network.host(topo.hosts[i]).send_message(remote, 50'000);
  }
  sim.run();
  // Both leaves of pod 0 forwarded traffic.
  const auto leaf0 = network.switch_at(topo.leaves[0]).stats().packets_forwarded;
  const auto leaf1 = network.switch_at(topo.leaves[1]).stats().packets_forwarded;
  EXPECT_GT(leaf0, 0u);
  EXPECT_GT(leaf1, 0u);
}

}  // namespace
}  // namespace src
