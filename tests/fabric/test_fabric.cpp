#include "fabric/initiator.hpp"
#include "fabric/target.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "workload/micro.hpp"

namespace src::fabric {
namespace {

using common::IoType;
using common::Rate;

struct Rig {
  sim::Simulator sim;
  net::NetConfig net_config;
  net::Network network{sim, net_config};
  net::StarTopology topo;
  FabricContext context;
  std::unique_ptr<Initiator> initiator;
  std::unique_ptr<Target> target;

  explicit Rig(TargetConfig target_config = {}) {
    topo = net::make_star(network, 2, Rate::gbps(10.0), common::kMicrosecond);
    initiator = std::make_unique<Initiator>(network, topo.hosts[0], context);
    target = std::make_unique<Target>(network, topo.hosts[1], context,
                                      std::move(target_config));
  }
};

TEST(FabricTest, ReadRoundTrip) {
  Rig rig;
  rig.initiator->issue(IoType::kRead, 0, 65536, rig.target->node_id());
  rig.sim.run();
  EXPECT_EQ(rig.initiator->stats().reads_completed, 1u);
  EXPECT_EQ(rig.initiator->stats().read_bytes_received, 65536u);
  EXPECT_EQ(rig.target->stats().reads_served, 1u);
  EXPECT_EQ(rig.context.outstanding_requests(), 0u);
}

TEST(FabricTest, WriteRoundTrip) {
  Rig rig;
  rig.initiator->issue(IoType::kWrite, 1 << 20, 32768, rig.target->node_id());
  rig.sim.run();
  EXPECT_EQ(rig.initiator->stats().writes_completed, 1u);
  EXPECT_EQ(rig.target->stats().writes_served, 1u);
  EXPECT_EQ(rig.target->stats().write_bytes, 32768u);
}

TEST(FabricTest, ReadLatencyIncludesStorageAndNetwork) {
  Rig rig;
  rig.initiator->issue(IoType::kRead, 0, 16384, rig.target->node_id());
  rig.sim.run();
  // At least the SSD read latency (75 us for SSD-A) plus network hops.
  EXPECT_GT(rig.initiator->stats().mean_read_latency_us(), 75.0);
}

TEST(FabricTest, TraceReplayCompletes) {
  Rig rig;
  workload::Trace trace;
  for (int i = 0; i < 50; ++i) {
    trace.push_back({common::microseconds(20.0 * i),
                     i % 3 == 0 ? IoType::kWrite : IoType::kRead,
                     static_cast<std::uint64_t>(i) << 20, 16384});
  }
  rig.initiator->run_trace(trace, [&](const workload::TraceRecord&, std::size_t) {
    return rig.target->node_id();
  });
  rig.sim.run();
  EXPECT_TRUE(rig.initiator->all_complete());
  EXPECT_EQ(rig.initiator->stats().reads_issued +
                rig.initiator->stats().writes_issued,
            50u);
}

TEST(FabricTest, ReadTimelineRecordsArrivals) {
  Rig rig;
  rig.initiator->issue(IoType::kRead, 0, 300'000, rig.target->node_id());
  rig.sim.run();
  EXPECT_EQ(rig.initiator->read_timeline().total_bytes(), 300'000u);
}

TEST(FabricTest, SubmitListenerSeesRequests) {
  Rig rig;
  std::vector<RequestInfo> seen;
  rig.target->set_submit_listener([&](const RequestInfo& info) { seen.push_back(info); });
  rig.initiator->issue(IoType::kRead, 4096, 8192, rig.target->node_id());
  rig.sim.run();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].lba, 4096u);
  EXPECT_EQ(seen[0].bytes, 8192u);
  EXPECT_EQ(seen[0].type, IoType::kRead);
}

TEST(FabricTest, WriteCompleteListenerFires) {
  Rig rig;
  std::uint64_t write_bytes = 0;
  rig.target->set_write_complete_listener(
      [&](common::SimTime, std::uint32_t bytes) { write_bytes += bytes; });
  rig.initiator->issue(IoType::kWrite, 0, 12288, rig.target->node_id());
  rig.sim.run();
  EXPECT_EQ(write_bytes, 12288u);
}

TEST(FabricTest, SsqModeExposesDriverAndWeights) {
  TargetConfig config;
  config.driver_mode = DriverMode::kSsq;
  Rig rig(config);
  ASSERT_NE(rig.target->ssq_driver(0), nullptr);
  rig.target->set_weight_ratio(5);
  EXPECT_EQ(rig.target->ssq_driver(0)->write_weight(), 5u);
}

TEST(FabricTest, FifoModeHasNoSsqDriver) {
  Rig rig;  // default FIFO
  EXPECT_EQ(rig.target->ssq_driver(0), nullptr);
  rig.target->set_weight_ratio(5);  // must be a harmless no-op
}

TEST(FabricTest, MultiDeviceStripesRequests) {
  TargetConfig config;
  config.device_count = 4;
  Rig rig(config);
  for (int i = 0; i < 64; ++i) {
    rig.initiator->issue(IoType::kRead, static_cast<std::uint64_t>(i) << 20,
                         16384, rig.target->node_id());
  }
  rig.sim.run();
  int devices_used = 0;
  for (std::size_t d = 0; d < rig.target->device_count(); ++d) {
    if (rig.target->device(d).stats().reads_completed > 0) ++devices_used;
  }
  EXPECT_GT(devices_used, 1);
  EXPECT_EQ(rig.initiator->stats().reads_completed, 64u);
}

TEST(FabricTest, CongestionListenerSeesRateCuts) {
  // Two targets in-cast into one initiator to force DCQCN activity.
  sim::Simulator sim;
  net::Network network(sim, net::NetConfig{});
  auto topo = net::make_star(network, 3, Rate::gbps(2.0), common::kMicrosecond);
  FabricContext context;
  Initiator initiator(network, topo.hosts[0], context);
  TargetConfig config;
  Target t1(network, topo.hosts[1], context, config);
  Target t2(network, topo.hosts[2], context, config);

  int cuts = 0;
  t1.set_congestion_listener([&](Rate, bool decrease) { cuts += decrease; });
  t2.set_congestion_listener([&](Rate, bool decrease) { cuts += decrease; });

  for (int i = 0; i < 400; ++i) {
    initiator.issue(IoType::kRead, static_cast<std::uint64_t>(i) << 20, 65536,
                    i % 2 ? t1.node_id() : t2.node_id());
  }
  sim.run_until(50 * common::kMillisecond);
  EXPECT_GT(cuts, 0);
  EXPECT_GT(t1.stats().congestion_signals + t2.stats().congestion_signals, 0u);
}

}  // namespace
}  // namespace src::fabric

namespace src::fabric {
namespace {

using common::IoType;
using common::Rate;

TEST(FabricTest, MaxOutstandingBoundsInflight) {
  sim::Simulator sim;
  net::Network network(sim, net::NetConfig{});
  auto topo = net::make_star(network, 2, Rate::gbps(10.0), common::kMicrosecond);
  FabricContext context;
  Initiator initiator(network, topo.hosts[0], context);
  Target target(network, topo.hosts[1], context, TargetConfig{});
  initiator.set_max_outstanding(4);

  workload::Trace trace;
  for (int i = 0; i < 60; ++i) {
    trace.push_back({0, IoType::kRead, static_cast<std::uint64_t>(i) << 20, 16384});
  }
  initiator.run_trace(trace, [&](const workload::TraceRecord&, std::size_t) {
    return target.node_id();
  });
  sim.run_until(common::kMillisecond / 10);
  EXPECT_LE(initiator.outstanding(), 4u);
  sim.run();
  EXPECT_TRUE(initiator.all_complete());
  EXPECT_EQ(initiator.stats().reads_completed, 60u);
}

TEST(FabricTest, LatencyPercentilesRecorded) {
  sim::Simulator sim;
  net::Network network(sim, net::NetConfig{});
  auto topo = net::make_star(network, 2, Rate::gbps(10.0), common::kMicrosecond);
  FabricContext context;
  Initiator initiator(network, topo.hosts[0], context);
  Target target(network, topo.hosts[1], context, TargetConfig{});
  for (int i = 0; i < 30; ++i) {
    initiator.issue(i % 2 ? IoType::kWrite : IoType::kRead,
                    static_cast<std::uint64_t>(i) << 20, 16384, target.node_id());
  }
  sim.run();
  EXPECT_EQ(initiator.stats().read_latency.count(), 15u);
  EXPECT_EQ(initiator.stats().write_latency.count(), 15u);
  EXPECT_GT(initiator.stats().read_latency.p50_us(), 75.0);  // >= flash read
}

TEST(FabricContextTest, MissingBindingResolvesToSentinel) {
  FabricContext context;
  EXPECT_EQ(context.take_message_binding(12345), kNoBinding);
}

TEST(FabricContextTest, CancelMessageMakesDeliveryDeadLetter) {
  FabricContext context;
  const std::uint64_t id = context.new_request(RequestInfo{});
  context.bind_message(7, id);
  context.cancel_message(7);
  EXPECT_EQ(context.take_message_binding(7), kNoBinding);
  EXPECT_EQ(context.outstanding_bindings(), 0u);
}

TEST(FabricContextTest, ExpireDropsEveryBindingOfARequest) {
  FabricContext context;
  const std::uint64_t a = context.new_request(RequestInfo{});
  const std::uint64_t b = context.new_request(RequestInfo{});
  context.bind_message(1, a);
  context.bind_message(2, a);  // e.g. original capsule + its response
  context.bind_message(3, b);
  context.expire_request_messages(a);
  EXPECT_EQ(context.take_message_binding(1), kNoBinding);
  EXPECT_EQ(context.take_message_binding(2), kNoBinding);
  EXPECT_EQ(context.take_message_binding(3), b);  // other requests untouched
}

TEST(FabricContextTest, CompleteRequestExpiresStragglerBindings) {
  // The leak this guards against: a message lost on the wire used to leave
  // its binding in the map forever once the request finished another way.
  FabricContext context;
  const std::uint64_t id = context.new_request(RequestInfo{});
  context.bind_message(9, id);  // never delivered (lost packet)
  context.complete_request(id);
  EXPECT_EQ(context.outstanding_requests(), 0u);
  EXPECT_EQ(context.outstanding_bindings(), 0u);
  EXPECT_EQ(context.take_message_binding(9), kNoBinding);
}

TEST(FabricTest, ClosedLoopLimitsQueueGrowthVsOpenLoop) {
  // Under SSD overload, a closed-loop initiator keeps latency bounded by
  // its window while the open-loop one lets it grow with the backlog.
  auto p99 = [](std::size_t window) {
    sim::Simulator sim;
    net::Network network(sim, net::NetConfig{});
    auto topo = net::make_star(network, 2, Rate::gbps(10.0), common::kMicrosecond);
    FabricContext context;
    Initiator initiator(network, topo.hosts[0], context);
    Target target(network, topo.hosts[1], context, TargetConfig{});
    initiator.set_max_outstanding(window);
    const auto trace = workload::generate_micro(
        workload::symmetric_micro(5.0, 32.0 * 1024, 1500), 3);
    initiator.run_trace(trace, [&](const workload::TraceRecord&, std::size_t) {
      return target.node_id();
    });
    sim.run_until(2 * common::kSecond);
    return initiator.stats().read_latency.p99_us();
  };
  EXPECT_LT(p99(8), p99(0) / 3.0);
}

}  // namespace
}  // namespace src::fabric
