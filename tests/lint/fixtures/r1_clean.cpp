// srclint fixture: R1 must stay silent here — member functions named
// time(), declarations named time, and seeded generators are all fine.
#include <cstdint>

struct Sim {
  std::uint64_t time() const { return now; }
  std::uint64_t now = 0;
};

std::uint64_t sim_time(const Sim& sim) { return sim.time(); }

struct Trace {
  // A declaration whose name is `time` is not a call.
  std::uint64_t time(std::uint64_t at) const { return at; }
};

std::uint64_t replay(const Trace& trace, const Sim* sim) {
  return trace.time(sim->time());
}
