// srclint fixture: self-contained header — R5 must stay silent.
#pragma once

#include <vector>

struct R5Clean {
  std::vector<int> values;
};
