// srclint fixture: observability macro arguments that mutate state must
// trip R3. This file is never compiled; it only exists to be linted.
#include <cstdint>
#include <vector>

#define SRC_OBS_COUNT_ADD(name, delta) ((void)0)
#define SRC_OBS_GAUGE(name, value) ((void)0)
#define SRC_OBS_INSTANT(cat, name, ts, lane, value) ((void)0)

void fixture_r3(std::uint64_t& counter, std::vector<int>& queue) {
  SRC_OBS_COUNT_ADD("io.bytes", counter++);
  SRC_OBS_GAUGE("queue.depth", counter = 4);
  SRC_OBS_INSTANT("sim", "tick", 0, 0, (queue.push_back(1), 1.0));
}
