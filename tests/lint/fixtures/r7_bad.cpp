// R7 fixture: FP-determinism violations — exact comparison, unordered
// std::accumulate, and a range-for reduction into a double.
#include <numeric>
#include <vector>

namespace fx {

bool exact(double alpha, double beta) {
  return alpha == beta;
}

bool sentinel(double gain) {
  return gain != -1.0;
}

double sum_accumulate(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

double sum_loop(const std::vector<double>& xs) {
  double total = 0.0;
  for (const double x : xs) total += x;
  return total;
}

}  // namespace fx
