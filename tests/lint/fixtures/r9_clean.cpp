// R9 fixture (clean): by-value captures, *this copies, justified by-ref
// captures, and subscripts that look like captures must all stay silent.
namespace fx {

struct Sim {
  template <typename F> void schedule_at(long when, F&& fn);
};

struct Node {
  Sim sim;
  int hits = 0;

  void arm(int counter) {
    sim.schedule_at(5, [counter] { (void)counter; });
    sim.schedule_at(7, [*this]() mutable { ++hits; });
    // srclint:capture-ok(the node outlives every event it schedules)
    sim.schedule_at(9, [this] { ++hits; });
  }
};

void subscripts(Sim& sim, long (&table)[4]) {
  sim.schedule_at(table[0], nullptr);
}

}  // namespace fx
