// R7 fixture (clean): tolerance compares, integer reductions, and
// justified pinned-order float loops must all stay silent.
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

namespace fx {

bool close(double a, double b) {
  return std::abs(a - b) < 1e-9;
}

std::uint64_t sum_ints(const std::vector<std::uint64_t>& xs) {
  std::uint64_t acc = 0;
  for (const auto x : xs) acc += x;
  return std::accumulate(xs.begin(), xs.end(), std::uint64_t{0});
}

double pinned(const std::vector<double>& xs) {
  double total = 0.0;
  // srclint:fp-ok(vector index order is the pinned order)
  for (const double x : xs) total += x;
  return total;
}

bool integral(double v) {
  // srclint:fp-ok(exactness check — floor(v)==v detects integral doubles)
  return v == std::floor(v);
}

}  // namespace fx
