// srclint fixture: default-constructed RNG engines must trip R4.
// This file is never compiled; it only exists to be linted.
#include <random>

void fixture_r4() {
  std::mt19937 gen;
  std::default_random_engine engine;
  auto tmp = std::mt19937();
  std::mt19937_64 wide{};
  (void)gen;
  (void)engine;
  (void)tmp;
  (void)wide;
}
