// srclint fixture: every marked line must trip R1 (nondeterminism source).
// This file is never compiled; it only exists to be linted.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int fixture_r1() {
  std::random_device rd;
  auto wall = std::chrono::system_clock::now();
  auto mono = std::chrono::steady_clock::now();
  auto fine = std::chrono::high_resolution_clock::now();
  std::srand(42);
  int noise = std::rand();
  std::time_t stamp = std::time(nullptr);
  return static_cast<int>(rd() + static_cast<unsigned>(noise) +
                          static_cast<unsigned>(stamp));
}
