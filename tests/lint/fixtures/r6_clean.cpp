// R6 fixture (clean): same-unit arithmetic, explicit multiplicative
// conversions, suffix-free names, and suffixed-callee results that agree
// must all stay silent.
namespace fx {

long add(long a_ns, long b_ns) { return a_ns + b_ns; }

long convert(long t_us) {
  long t_ns = t_us * 1000;  // multiplication converts the unit explicitly
  t_ns = t_us * 1000;
  return t_ns;
}

struct Window {
  long as_us() const { return 0; }
};

bool compare(const Window& w, long t_us, long plain) {
  return w.as_us() > t_us && plain > t_us;
}

}  // namespace fx
