// R9 fixture: lambdas handed to the scheduling API capturing by
// reference or raw `this`, both directly and through a one-hop wrapper
// (`run_later` calls schedule_at, so calls to it are scheduler calls).
namespace fx {

struct Sim {
  template <typename F> void schedule_at(long when, F&& fn);
  template <typename F> void schedule(F&& fn);
};

template <typename F>
void run_later(Sim& sim, long when, F&& fn) {
  sim.schedule_at(when, static_cast<F&&>(fn));
}

struct Node {
  Sim sim;
  int hits = 0;

  void arm(int& counter) {
    sim.schedule_at(5, [&counter] { ++counter; });
    sim.schedule([this] { ++hits; });
    sim.schedule_at(9, [&] { ++hits; });
  }
};

void cascade(Sim& sim, int& counter) {
  run_later(sim, 3, [&counter] { ++counter; });
}

}  // namespace fx
