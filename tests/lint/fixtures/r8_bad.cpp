// R8 fixture: every flavor of mutable static-storage state — namespace
// scope, file static, static member, function-local static, and
// thread_local — must land in the race-surface inventory as a finding.
namespace fx {

int global_counter = 0;

static double drift = 0.0;

struct Pool {
  static int live_objects;
};

int next_id() {
  static int counter = 0;
  return ++counter;
}

thread_local int tls_scratch = 0;

}  // namespace fx
