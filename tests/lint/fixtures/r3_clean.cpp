// srclint fixture: R3 must stay silent here — comparisons, reads, and
// calls to non-mutating accessors are passive.
#include <cstdint>
#include <vector>

#define SRC_OBS_COUNT_ADD(name, delta) ((void)0)
#define SRC_OBS_GAUGE(name, value) ((void)0)
#define SRC_OBS_INSTANT(cat, name, ts, lane, value) ((void)0)

void fixture_r3_clean(const std::uint64_t counter,
                      const std::vector<int>& queue) {
  SRC_OBS_COUNT_ADD("io.bytes", counter == 0 ? 1 : 2);
  SRC_OBS_GAUGE("queue.depth", static_cast<double>(queue.size()));
  SRC_OBS_INSTANT("sim", "tick", 0, 0, counter >= 4 ? 1.0 : 0.0);
}
