// srclint fixture: R2 must stay silent here — lookups into unordered
// containers are fine (only iteration is an order hazard), and ordered
// containers may be iterated freely.
#include <cstdint>
#include <map>
#include <unordered_map>

struct CleanTable {
  std::unordered_map<std::uint64_t, double> by_id;
  std::map<std::uint64_t, double> ordered;

  double lookup(std::uint64_t id) const {
    if (auto it = by_id.find(id); it != by_id.end()) return it->second;
    return 0.0;
  }

  double sum() const {
    double total = 0.0;
    for (const auto& [id, rate] : ordered) total += rate;
    return total;
  }
};
