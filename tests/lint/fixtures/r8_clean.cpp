// R8 fixture (clean): constants, constexpr members, const locals, and
// annotated shared state must all stay silent.
namespace fx {

constexpr int kLimit = 64;
inline constexpr double kScale = 1.5;

struct Config {
  static constexpr int kDefault = 7;
};

// srclint:shared-ok(append-only registry guarded by the global init mutex)
int registry_generation = 0;

int next_token() {
  static const int base = 100;
  return base;
}

}  // namespace fx
