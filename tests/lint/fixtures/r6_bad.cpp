// R6 fixture: unit-suffix mixing across arithmetic, comparison,
// assignment, and a suffixed-callee result; every site must fire.
namespace fx {

long add(long timeout_us, long delay_ns) {
  return timeout_us + delay_ns;
}

bool compare(double rate_gbps, double budget_bytes_per_sec) {
  return rate_gbps < budget_bytes_per_sec;
}

long assign(long window_ms) {
  long deadline_ns = 0;
  deadline_ns = window_ms;
  return deadline_ns;
}

struct Window {
  long as_ms() const { return 0; }
};

long callee(const Window& w, long t_us) {
  return w.as_ms() - t_us;
}

}  // namespace fx
