// srclint fixture: iteration over unordered containers must trip R2.
// This file is never compiled; it only exists to be linted.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

struct FlowTable {
  std::unordered_map<std::uint64_t, double> flows;
  std::unordered_set<std::uint64_t> active;

  double sum() const {
    double total = 0.0;
    for (const auto& [id, rate] : flows) total += rate;
    return total;
  }

  std::uint64_t first() const { return *active.begin(); }
};
