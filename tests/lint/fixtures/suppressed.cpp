// srclint fixture: one violation per token rule, each silenced by a
// suppression tag — the whole file must lint clean.
#include <cstdlib>
#include <random>
#include <unordered_map>

#define SRC_OBS_GAUGE(name, value) ((void)0)

// srclint:shared-ok(fixture — suppression coverage for R8)
std::unordered_map<int, int> table;

int fixture_suppressed(int x) {
  int noise = std::rand();  // srclint:nondet-ok
  int total = 0;
  // srclint:ordered-ok — snapshot below is order-insensitive (max).
  for (const auto& [key, value] : table) total += value;
  SRC_OBS_GAUGE("x", total = x);  // srclint:obs-ok
  std::mt19937 gen;               // srclint:seed-ok
  return noise + total + static_cast<int>(gen());
}

struct SupSim {
  template <typename F>
  void schedule(F&& fn) {
    static_cast<F&&>(fn)();
  }
};

long fixture_suppressed_v2(SupSim& sim, long t_us, long limit_ns) {
  long sum_ns = t_us + limit_ns;  // srclint:units-ok
  double mean = 0.5;
  bool exact = mean == 0.5;  // srclint:fp-ok(fixture exactness check)
  // srclint:capture-ok(fixture — sim runs the callback synchronously)
  sim.schedule([&sum_ns] { sum_ns += 1; });
  return sum_ns + (exact ? 1 : 0);
}
