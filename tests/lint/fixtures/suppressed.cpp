// srclint fixture: one violation per token rule, each silenced by a
// suppression tag — the whole file must lint clean.
#include <cstdlib>
#include <random>
#include <unordered_map>

#define SRC_OBS_GAUGE(name, value) ((void)0)

std::unordered_map<int, int> table;

int fixture_suppressed(int x) {
  int noise = std::rand();  // srclint:nondet-ok
  int total = 0;
  // srclint:ordered-ok — snapshot below is order-insensitive (max).
  for (const auto& [key, value] : table) total += value;
  SRC_OBS_GAUGE("x", total = x);  // srclint:obs-ok
  std::mt19937 gen;               // srclint:seed-ok
  return noise + total + static_cast<int>(gen());
}
