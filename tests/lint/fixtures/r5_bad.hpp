// srclint fixture: deliberately NOT self-contained — std::vector is used
// without including <vector>, so a TU holding just this header must fail
// to compile and trip R5.
#pragma once

struct R5Bad {
  std::vector<int> values;
};
