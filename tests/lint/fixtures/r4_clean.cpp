// srclint fixture: R4 must stay silent here — every engine threads an
// explicit seed, and a member of a seed-requiring type (the repo's Rng
// pattern: no default constructor) is initialized in the ctor init list.
#include <cstdint>
#include <random>

struct Rng {
  explicit Rng(std::uint64_t seed) : state(seed) {}
  std::uint64_t state;
};

struct Seeded {
  explicit Seeded(std::uint64_t seed) : rng_(seed), gen_(seed) {}
  Rng rng_;
  std::mt19937_64 gen_{0xBEEF};
};

void fixture_r4_clean(std::uint64_t seed) {
  std::mt19937 gen(static_cast<std::mt19937::result_type>(seed));
  std::mt19937_64 wide{seed};
  Rng rng(seed);
  (void)gen;
  (void)wide;
  (void)rng;
}
