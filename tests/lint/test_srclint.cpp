// End-to-end self-test of the srclint binary: each rule R1–R5 must fire on
// its deliberately-violating fixture with exact findings, stay silent on
// the clean fixture, honor suppression tags, and use the documented exit
// codes (0 clean / 1 findings / 2 usage or I/O error).
//
// The binary path, fixture dir, compiler, and repo root are injected by
// CMake as compile definitions.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <sys/wait.h>
#include <vector>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  ///< stdout only (findings); stderr is discarded
};

RunResult run_srclint(const std::string& args) {
  RunResult result;
  const std::string cmd =
      std::string(SRC_SRCLINT_BIN) + " " + args + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = fread(buffer, 1, sizeof buffer, pipe)) > 0) {
    result.output.append(buffer, got);
  }
  const int status = pclose(pipe);
  if (status != -1 && WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string fixture(const std::string& name) {
  return std::string(SRC_LINT_FIXTURE_DIR) + "/" + name;
}

std::string joined(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

TEST(SrclintR1, FiresOnEveryNondeterminismSource) {
  const std::string path = fixture("r1_bad.cpp");
  const RunResult r = run_srclint("--rules R1 " + path);
  EXPECT_EQ(r.exit_code, 1);
  const std::string type_msg =
      "' — simulation code must derive all randomness and time from seeded "
      "Rng / sim clock";
  const std::string call_msg = "' — use the simulator clock or a seeded Rng";
  EXPECT_EQ(r.output,
            joined({
                path + ":9: R1: nondeterminism source 'random_device" + type_msg,
                path + ":10: R1: nondeterminism source 'system_clock" + type_msg,
                path + ":11: R1: nondeterminism source 'steady_clock" + type_msg,
                path + ":12: R1: nondeterminism source 'high_resolution_clock" +
                    type_msg,
                path + ":13: R1: call to nondeterministic 'srand()" + call_msg,
                path + ":14: R1: call to nondeterministic 'rand()" + call_msg,
                path + ":15: R1: call to nondeterministic 'time()" + call_msg,
            }));
}

TEST(SrclintR1, SilentOnMemberTimeAndDeclarations) {
  const RunResult r = run_srclint("--rules R1 " + fixture("r1_clean.cpp"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "");
}

TEST(SrclintR2, FiresOnRangeForAndIteratorWalk) {
  const std::string path = fixture("r2_bad.cpp");
  const RunResult r = run_srclint("--rules R2 " + path);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(
      r.output,
      joined({
          path + ":13: R2: iteration over unordered container 'flows' — "
                 "hash-table order must not feed event or arithmetic order "
                 "(use std::map, a sorted snapshot, or an insertion-order "
                 "vector)",
          path + ":17: R2: iterator over unordered container 'active' — "
                 "hash-table order must not feed event or arithmetic order",
      }));
}

TEST(SrclintR2, SilentOnLookupsAndOrderedContainers) {
  const RunResult r = run_srclint("--rules R2 " + fixture("r2_clean.cpp"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "");
}

TEST(SrclintR3, FiresOnMutatingMacroArguments) {
  const std::string path = fixture("r3_bad.cpp");
  const RunResult r = run_srclint("--rules R3 " + path);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(
      r.output,
      joined({
          path + ":11: R3: observability macro argument mutates state "
                 "('++') — recording must be passive",
          path + ":12: R3: observability macro argument mutates state "
                 "('=') — recording must be passive",
          path + ":13: R3: observability macro argument calls mutating API "
                 "'push_back()' — recording must be passive",
      }));
}

TEST(SrclintR3, SilentOnPassiveArguments) {
  const RunResult r = run_srclint("--rules R3 " + fixture("r3_clean.cpp"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "");
}

TEST(SrclintR4, FiresOnDefaultConstructedEngines) {
  const std::string path = fixture("r4_bad.cpp");
  const RunResult r = run_srclint("--rules R4 " + path);
  EXPECT_EQ(r.exit_code, 1);
  const std::string msg = "' — thread an explicit seed";
  EXPECT_EQ(r.output,
            joined({
                path + ":6: R4: default-constructed RNG engine 'mt19937 gen" + msg,
                path + ":7: R4: default-constructed RNG engine "
                       "'default_random_engine engine" + msg,
                path + ":8: R4: default-constructed RNG engine 'mt19937" + msg,
                path + ":9: R4: default-constructed RNG engine 'mt19937_64 "
                       "wide" + msg,
            }));
}

TEST(SrclintR4, SilentOnSeededEnginesAndCtorInitializedMembers) {
  const RunResult r = run_srclint("--rules R4 " + fixture("r4_clean.cpp"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "");
}

TEST(SrclintR5, FiresOnNonSelfContainedHeader) {
  const std::string path = fixture("r5_bad.hpp");
  const RunResult r =
      run_srclint("--rules R5 --cxx " SRC_LINT_CXX " " + path);
  EXPECT_EQ(r.exit_code, 1);
  const std::string expected_prefix =
      path + ":1: R5: header is not self-contained (fails to compile "
             "standalone):";
  EXPECT_EQ(r.output.substr(0, expected_prefix.size()), expected_prefix);
}

TEST(SrclintR5, SilentOnSelfContainedHeader) {
  const RunResult r =
      run_srclint("--rules R5 --cxx " SRC_LINT_CXX " " + fixture("r5_clean.hpp"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "");
}

TEST(SrclintSuppressions, TagsSilenceEveryTokenRule) {
  const RunResult r =
      run_srclint("--no-header-check " + fixture("suppressed.cpp"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "");
}

TEST(SrclintSuppressions, SameViolationsFireWithoutTags) {
  // Sanity check that the suppressed fixture's violations are real: R1,
  // R2, R3 and R4 each fire somewhere in it when run on a copy with the
  // tags stripped. Rather than materializing a stripped copy we just
  // assert the violating fixtures above covered every tag; this test
  // pins the tag names themselves so a rename cannot silently disable
  // suppression handling.
  const RunResult r = run_srclint("--no-header-check " + fixture("r1_bad.cpp") +
                                  " " + fixture("r4_bad.cpp"));
  EXPECT_EQ(r.exit_code, 1);
}

TEST(SrclintExitCodes, UsageAndIoErrorsExitTwo) {
  EXPECT_EQ(run_srclint("").exit_code, 2);                       // nothing to lint
  EXPECT_EQ(run_srclint("--root /nonexistent-srclint").exit_code, 2);
  EXPECT_EQ(run_srclint("--frobnicate").exit_code, 2);           // unknown option
  EXPECT_EQ(run_srclint("--rules R9 x.cpp").exit_code, 2);       // unknown rule
  EXPECT_EQ(run_srclint("/no/such/file.cpp").exit_code, 2);      // unreadable file
  EXPECT_EQ(run_srclint("--root . x.cpp").exit_code, 2);         // mutually exclusive
}

TEST(SrclintTreeMode, SkipsGitignoredPathsAndFixtures) {
  const RunResult r = run_srclint("--root " SRC_REPO_ROOT " --list");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("src/net/host.cpp\n"), std::string::npos);
  EXPECT_NE(r.output.find("tools/srclint/rules.cpp\n"), std::string::npos);
  // build/ is gitignored; fixtures are deliberate violations.
  EXPECT_EQ(r.output.find("build/"), std::string::npos);
  EXPECT_EQ(r.output.find("tests/lint/fixtures/"), std::string::npos);
}

}  // namespace
