// End-to-end self-test of the srclint binary: each rule R1–R9 must fire on
// its deliberately-violating fixture with exact findings, stay silent on
// the clean fixture, honor suppression tags, and use the documented exit
// codes (0 clean / 1 findings / 2 usage or I/O error). The v2 surfaces —
// JSON/SARIF output, the baseline gate, and the shared-state inventory —
// are exercised through the same binary.
//
// The binary path, fixture dir, compiler, and repo root are injected by
// CMake as compile definitions.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <vector>

#include "obs/json.hpp"

namespace obs = src::obs;

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  ///< stdout only (findings); stderr is discarded
};

RunResult run_srclint(const std::string& args) {
  RunResult result;
  const std::string cmd =
      std::string(SRC_SRCLINT_BIN) + " " + args + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = fread(buffer, 1, sizeof buffer, pipe)) > 0) {
    result.output.append(buffer, got);
  }
  const int status = pclose(pipe);
  if (status != -1 && WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string fixture(const std::string& name) {
  return std::string(SRC_LINT_FIXTURE_DIR) + "/" + name;
}

std::string joined(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

TEST(SrclintR1, FiresOnEveryNondeterminismSource) {
  const std::string path = fixture("r1_bad.cpp");
  const RunResult r = run_srclint("--rules R1 " + path);
  EXPECT_EQ(r.exit_code, 1);
  const std::string type_msg =
      "' — simulation code must derive all randomness and time from seeded "
      "Rng / sim clock";
  const std::string call_msg = "' — use the simulator clock or a seeded Rng";
  EXPECT_EQ(r.output,
            joined({
                path + ":9: R1: nondeterminism source 'random_device" + type_msg,
                path + ":10: R1: nondeterminism source 'system_clock" + type_msg,
                path + ":11: R1: nondeterminism source 'steady_clock" + type_msg,
                path + ":12: R1: nondeterminism source 'high_resolution_clock" +
                    type_msg,
                path + ":13: R1: call to nondeterministic 'srand()" + call_msg,
                path + ":14: R1: call to nondeterministic 'rand()" + call_msg,
                path + ":15: R1: call to nondeterministic 'time()" + call_msg,
            }));
}

TEST(SrclintR1, SilentOnMemberTimeAndDeclarations) {
  const RunResult r = run_srclint("--rules R1 " + fixture("r1_clean.cpp"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "");
}

TEST(SrclintR2, FiresOnRangeForAndIteratorWalk) {
  const std::string path = fixture("r2_bad.cpp");
  const RunResult r = run_srclint("--rules R2 " + path);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(
      r.output,
      joined({
          path + ":13: R2: iteration over unordered container 'flows' — "
                 "hash-table order must not feed event or arithmetic order "
                 "(use std::map, a sorted snapshot, or an insertion-order "
                 "vector)",
          path + ":17: R2: iterator over unordered container 'active' — "
                 "hash-table order must not feed event or arithmetic order",
      }));
}

TEST(SrclintR2, SilentOnLookupsAndOrderedContainers) {
  const RunResult r = run_srclint("--rules R2 " + fixture("r2_clean.cpp"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "");
}

TEST(SrclintR3, FiresOnMutatingMacroArguments) {
  const std::string path = fixture("r3_bad.cpp");
  const RunResult r = run_srclint("--rules R3 " + path);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(
      r.output,
      joined({
          path + ":11: R3: observability macro argument mutates state "
                 "('++') — recording must be passive",
          path + ":12: R3: observability macro argument mutates state "
                 "('=') — recording must be passive",
          path + ":13: R3: observability macro argument calls mutating API "
                 "'push_back()' — recording must be passive",
      }));
}

TEST(SrclintR3, SilentOnPassiveArguments) {
  const RunResult r = run_srclint("--rules R3 " + fixture("r3_clean.cpp"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "");
}

TEST(SrclintR4, FiresOnDefaultConstructedEngines) {
  const std::string path = fixture("r4_bad.cpp");
  const RunResult r = run_srclint("--rules R4 " + path);
  EXPECT_EQ(r.exit_code, 1);
  const std::string msg = "' — thread an explicit seed";
  EXPECT_EQ(r.output,
            joined({
                path + ":6: R4: default-constructed RNG engine 'mt19937 gen" + msg,
                path + ":7: R4: default-constructed RNG engine "
                       "'default_random_engine engine" + msg,
                path + ":8: R4: default-constructed RNG engine 'mt19937" + msg,
                path + ":9: R4: default-constructed RNG engine 'mt19937_64 "
                       "wide" + msg,
            }));
}

TEST(SrclintR4, SilentOnSeededEnginesAndCtorInitializedMembers) {
  const RunResult r = run_srclint("--rules R4 " + fixture("r4_clean.cpp"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "");
}

TEST(SrclintR5, FiresOnNonSelfContainedHeader) {
  const std::string path = fixture("r5_bad.hpp");
  const RunResult r =
      run_srclint("--rules R5 --cxx " SRC_LINT_CXX " " + path);
  EXPECT_EQ(r.exit_code, 1);
  const std::string expected_prefix =
      path + ":1: R5: header is not self-contained (fails to compile "
             "standalone):";
  EXPECT_EQ(r.output.substr(0, expected_prefix.size()), expected_prefix);
}

TEST(SrclintR5, SilentOnSelfContainedHeader) {
  const RunResult r =
      run_srclint("--rules R5 --cxx " SRC_LINT_CXX " " + fixture("r5_clean.hpp"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "");
}

TEST(SrclintSuppressions, TagsSilenceEveryTokenRule) {
  const RunResult r =
      run_srclint("--no-header-check " + fixture("suppressed.cpp"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "");
}

TEST(SrclintSuppressions, SameViolationsFireWithoutTags) {
  // Sanity check that the suppressed fixture's violations are real: R1,
  // R2, R3 and R4 each fire somewhere in it when run on a copy with the
  // tags stripped. Rather than materializing a stripped copy we just
  // assert the violating fixtures above covered every tag; this test
  // pins the tag names themselves so a rename cannot silently disable
  // suppression handling.
  const RunResult r = run_srclint("--no-header-check " + fixture("r1_bad.cpp") +
                                  " " + fixture("r4_bad.cpp"));
  EXPECT_EQ(r.exit_code, 1);
}

TEST(SrclintExitCodes, UsageAndIoErrorsExitTwo) {
  EXPECT_EQ(run_srclint("").exit_code, 2);                       // nothing to lint
  EXPECT_EQ(run_srclint("--root /nonexistent-srclint").exit_code, 2);
  EXPECT_EQ(run_srclint("--frobnicate").exit_code, 2);           // unknown option
  EXPECT_EQ(run_srclint("--rules R12 x.cpp").exit_code, 2);      // unknown rule
  EXPECT_EQ(run_srclint("--format yaml x.cpp").exit_code, 2);    // unknown format
  EXPECT_EQ(run_srclint("/no/such/file.cpp").exit_code, 2);      // unreadable file
  EXPECT_EQ(run_srclint("--root . x.cpp").exit_code, 2);         // mutually exclusive
}

TEST(SrclintR6, FiresOnEveryUnitMix) {
  const std::string path = fixture("r6_bad.cpp");
  const RunResult r = run_srclint("--rules R6 " + path);
  EXPECT_EQ(r.exit_code, 1);
  const std::string tail = ") mixes units — convert explicitly before combining";
  EXPECT_EQ(r.output,
            joined({
                path + ":6: R6: unit mismatch: 'timeout_us' (us) + "
                       "'delay_ns' (ns" + tail,
                path + ":10: R6: unit mismatch: 'rate_gbps' (gbps) < "
                       "'budget_bytes_per_sec' (bytes_per_sec" + tail,
                path + ":15: R6: unit mismatch: 'deadline_ns' (ns) = "
                       "'window_ms' (ms" + tail,
                path + ":24: R6: unit mismatch: 'as_ms' (ms) - 't_us' (us" +
                    tail,
            }));
}

TEST(SrclintR6, SilentOnSameUnitAndExplicitConversions) {
  const RunResult r = run_srclint("--rules R6 " + fixture("r6_clean.cpp"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "");
}

TEST(SrclintR7, FiresOnExactCompareAccumulateAndReduction) {
  const std::string path = fixture("r7_bad.cpp");
  const RunResult r = run_srclint("--rules R7 " + path);
  EXPECT_EQ(r.exit_code, 1);
  const std::string cmp_msg =
      "' on floating-point values — exact FP comparison is "
      "representation-sensitive; compare with a tolerance or justify with "
      "srclint:fp-ok(<reason>)";
  EXPECT_EQ(
      r.output,
      joined({
          path + ":9: R7: '==" + cmp_msg,
          path + ":13: R7: '!=" + cmp_msg,
          path + ":17: R7: std::accumulate over floating-point values — FP "
                 "addition is not associative, so the reduction order is "
                 "observable; write an explicit loop over a pinned order and "
                 "justify with srclint:fp-ok(<reason>)",
          path + ":22: R7: order-sensitive floating-point reduction "
                 "'total +=' inside a range-for — the iteration order feeds "
                 "the FP result; pin it and justify with "
                 "srclint:fp-ok(<reason>)",
      }));
}

TEST(SrclintR7, SilentOnToleranceIntegersAndJustifiedLoops) {
  const RunResult r = run_srclint("--rules R7 " + fixture("r7_clean.cpp"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "");
}

TEST(SrclintR8, FiresOnEveryMutableStaticStorageFlavor) {
  const std::string path = fixture("r8_bad.cpp");
  const RunResult r = run_srclint("--rules R8 " + path);
  EXPECT_EQ(r.exit_code, 1);
  const std::string msg =
      "' — hidden shared mutable state blocks per-worker event-lane "
      "sharding; make it per-instance, or annotate with "
      "srclint:shared-ok(<reason>) to add it to the inventory";
  EXPECT_EQ(r.output,
            joined({
                path + ":6: R8: mutable namespace-scope state "
                       "'fx::global_counter" + msg,
                path + ":8: R8: mutable namespace-scope state 'fx::drift" + msg,
                path + ":11: R8: mutable static-member state "
                       "'fx::Pool::live_objects" + msg,
                path + ":15: R8: mutable local-static state 'fx::counter" + msg,
                path + ":19: R8: mutable thread-local state "
                       "'fx::tls_scratch" + msg,
            }));
}

TEST(SrclintR8, SilentOnConstantsAndAnnotatedState) {
  const RunResult r = run_srclint("--rules R8 " + fixture("r8_clean.cpp"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "");
}

TEST(SrclintR9, FiresOnRefAndThisCapturesIncludingWrappers) {
  const std::string path = fixture("r9_bad.cpp");
  const RunResult r = run_srclint("--rules R9 " + path);
  EXPECT_EQ(r.exit_code, 1);
  const std::string msg =
      " — the callback runs later, from the event loop, and may outlive the "
      "captured frame; capture by value or justify the lifetime with "
      "srclint:capture-ok(<reason>)";
  EXPECT_EQ(r.output,
            joined({
                path + ":21: R9: lambda passed to scheduler 'schedule_at' "
                       "captures by reference" + msg,
                path + ":22: R9: lambda passed to scheduler 'schedule' "
                       "captures raw 'this'" + msg,
                path + ":23: R9: lambda passed to scheduler 'schedule_at' "
                       "captures by reference" + msg,
                // `run_later` is a scheduler by propagation: its body calls
                // schedule_at, so a by-ref lambda handed to it is deferred.
                path + ":28: R9: lambda passed to scheduler 'run_later' "
                       "captures by reference" + msg,
            }));
}

TEST(SrclintR9, SilentOnByValueCopiesAndJustifiedCaptures) {
  const RunResult r = run_srclint("--rules R9 " + fixture("r9_clean.cpp"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "");
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(SrclintFormats, JsonFindingsParseAndRoundTripCount) {
  const RunResult r =
      run_srclint("--rules R6 --format json " + fixture("r6_bad.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  const obs::Json doc = obs::Json::parse(r.output);
  EXPECT_EQ(doc.find("schema")->as_string(), "src-lint-v1");
  EXPECT_EQ(doc.find("count")->as_int64(), 4);
  const auto& findings = doc.find("findings")->as_array();
  ASSERT_EQ(findings.size(), 4u);
  EXPECT_EQ(findings[0].find("rule")->as_string(), "R6");
  EXPECT_EQ(findings[0].find("line")->as_int64(), 6);
  EXPECT_EQ(findings[0].find("path")->as_string(), fixture("r6_bad.cpp"));
}

TEST(SrclintFormats, SarifIsValidJsonWithRuleMetadata) {
  const RunResult r =
      run_srclint("--rules R9 --format sarif " + fixture("r9_bad.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  const obs::Json doc = obs::Json::parse(r.output);
  EXPECT_EQ(doc.find("version")->as_string(), "2.1.0");
  const auto& runs = doc.find("runs")->as_array();
  ASSERT_EQ(runs.size(), 1u);
  const obs::Json& driver = *runs[0].find("tool")->find("driver");
  EXPECT_EQ(driver.find("name")->as_string(), "srclint");
  EXPECT_EQ(driver.find("rules")->as_array().size(), 9u);  // R1..R9 documented
  const auto& results = runs[0].find("results")->as_array();
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].find("ruleId")->as_string(), "R9");
  EXPECT_EQ(results[0].find("level")->as_string(), "error");
  const obs::Json& location = results[0].find("locations")->as_array()[0];
  const obs::Json& physical = *location.find("physicalLocation");
  EXPECT_EQ(physical.find("artifactLocation")->find("uri")->as_string(),
            fixture("r9_bad.cpp"));
  EXPECT_EQ(physical.find("region")->find("startLine")->as_int64(), 21);
}

TEST(SrclintFormats, SarifOutWritesFileAlongsideTextOutput) {
  const std::string sarif_path = testing::TempDir() + "srclint_sarif_out.json";
  const RunResult r = run_srclint("--rules R6 --sarif-out " + sarif_path +
                                  " " + fixture("r6_bad.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("R6: unit mismatch"), std::string::npos);  // text
  const obs::Json doc = obs::Json::parse(slurp(sarif_path));
  EXPECT_EQ(doc.find("version")->as_string(), "2.1.0");
  std::remove(sarif_path.c_str());
}

TEST(SrclintBaseline, RoundTripGatesKnownFindings) {
  const std::string baseline = testing::TempDir() + "srclint_baseline_rt.txt";
  const RunResult write = run_srclint("--rules R6 --write-baseline " +
                                      baseline + " " + fixture("r6_bad.cpp"));
  EXPECT_EQ(write.exit_code, 0);
  const RunResult gated = run_srclint("--rules R6 --baseline " + baseline +
                                      " " + fixture("r6_bad.cpp"));
  EXPECT_EQ(gated.exit_code, 0);  // all findings known -> clean
  EXPECT_EQ(gated.output, "");
  std::remove(baseline.c_str());
}

TEST(SrclintBaseline, NewFindingsStillFailThroughTheGate) {
  const std::string baseline = testing::TempDir() + "srclint_baseline_new.txt";
  const RunResult write = run_srclint("--rules R6 --write-baseline " +
                                      baseline + " " + fixture("r6_bad.cpp"));
  EXPECT_EQ(write.exit_code, 0);
  // Same baseline, but the run now also lints the R9 fixture: only the R9
  // findings (not in the baseline) must surface.
  const RunResult gated =
      run_srclint("--rules R6,R9 --baseline " + baseline + " " +
                  fixture("r6_bad.cpp") + " " + fixture("r9_bad.cpp"));
  EXPECT_EQ(gated.exit_code, 1);
  EXPECT_EQ(gated.output.find("R6:"), std::string::npos);
  EXPECT_NE(gated.output.find("R9: lambda passed to scheduler"),
            std::string::npos);
  std::remove(baseline.c_str());
}

TEST(SrclintBaseline, MissingBaselineFileIsAnError) {
  const RunResult r = run_srclint("--baseline /no/such/baseline.txt " +
                                  fixture("r6_clean.cpp"));
  EXPECT_EQ(r.exit_code, 2);
}

TEST(SrclintInventory, SharedStateInventoryRecordsMutabilityAndReasons) {
  const std::string inv_path = testing::TempDir() + "srclint_inventory.json";
  const RunResult r =
      run_srclint("--rules R8 --shared-inventory " + inv_path + " " +
                  fixture("r8_clean.cpp"));
  EXPECT_EQ(r.exit_code, 0);  // clean fixture: inventory, but no findings
  const obs::Json doc = obs::Json::parse(slurp(inv_path));
  EXPECT_EQ(doc.find("schema")->as_string(), "src-shared-state-v1");
  const auto& objects = doc.find("objects")->as_array();
  ASSERT_EQ(doc.find("count")->as_uint64(), objects.size());
  bool saw_annotated = false;
  bool saw_const = false;
  for (const obs::Json& obj : objects) {
    if (obj.find("name")->as_string() == "fx::registry_generation") {
      saw_annotated = true;
      EXPECT_TRUE(obj.find("annotated")->as_bool());
      EXPECT_FALSE(obj.find("const")->as_bool());
      EXPECT_EQ(obj.find("reason")->as_string(),
                "append-only registry guarded by the global init mutex");
    }
    if (obj.find("name")->as_string() == "fx::kLimit") {
      saw_const = true;
      EXPECT_TRUE(obj.find("const")->as_bool());
      EXPECT_EQ(obj.find("storage")->as_string(), "namespace-scope");
    }
  }
  EXPECT_TRUE(saw_annotated);
  EXPECT_TRUE(saw_const);
  std::remove(inv_path.c_str());
}

TEST(SrclintTreeMode, SkipsGitignoredPathsAndFixtures) {
  const RunResult r = run_srclint("--root " SRC_REPO_ROOT " --list");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("src/net/host.cpp\n"), std::string::npos);
  EXPECT_NE(r.output.find("tools/srclint/rules.cpp\n"), std::string::npos);
  // build/ is gitignored; fixtures are deliberate violations.
  EXPECT_EQ(r.output.find("build/"), std::string::npos);
  EXPECT_EQ(r.output.find("tests/lint/fixtures/"), std::string::npos);
}

}  // namespace
