// The chaos campaign machinery: plan sampling is a pure function of
// (base, params, seed) and only emits entries a scenario manifest can carry
// (valid indices, windows inside the horizon, 53-bit seeds); verified runs
// digest deterministically; a healthy mini-campaign comes back clean; and a
// genuinely failing trial shrinks to a smaller reproducer that still trips
// the same checker and replays bit-identically after a JSON round trip.
#include "chaos/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "chaos/shrink.hpp"
#include "scenario/presets.hpp"
#include "scenario/serialize.hpp"
#include "workload/micro.hpp"

namespace src::chaos {
namespace {

using common::kMillisecond;

/// Small DCQCN-only base (no TPM to train): a 100-read / 40-write micro
/// burst issued inside the first ~10 ms of a 60 ms run.
scenario::ScenarioSpec tiny_base() {
  scenario::ScenarioSpec spec = scenario::preset_spec("fig7-reduced");
  spec.name = "chaos-tiny";
  spec.max_time = 60 * kMillisecond;
  spec.workloads.clear();
  scenario::WorkloadSpec workload;
  workload.kind = "micro";
  workload.micro.read = workload::StreamParams{100.0, 16.0 * 1024, 100};
  workload.micro.write = workload::StreamParams{200.0, 16.0 * 1024, 40};
  spec.workloads.push_back(workload);
  spec.retry.enabled = true;
  spec.retry.base_timeout = 2 * kMillisecond;
  spec.retry.backoff_factor = 2.0;
  spec.retry.max_timeout = 16 * kMillisecond;
  spec.retry.max_retries = 10;
  return spec;
}

/// A scenario that provably wedges: probability-1 drops on the initiator's
/// access link with retries disabled strand every early request, so the
/// liveness watchdog fires once the 8 ms horizon and the grace pass.
scenario::ScenarioSpec wedged_spec() {
  scenario::ScenarioSpec spec = tiny_base();
  spec.name = "chaos-wedged";
  spec.retry.enabled = false;
  spec.verify.enabled = true;
  fault::PacketDropFault drop;
  drop.node = 1;
  drop.port = 0;
  drop.start = 0;
  drop.end = 8 * kMillisecond;
  drop.probability = 1.0;
  spec.faults.packet_drops.push_back(drop);
  return spec;
}

TEST(Sampler, PlanIsAPureFunctionOfItsInputs) {
  const scenario::ScenarioSpec base = default_base_spec();
  const SamplerParams params;
  const fault::FaultPlan once = sample_plan(base, params, 12345);
  const fault::FaultPlan again = sample_plan(base, params, 12345);
  EXPECT_TRUE(once == again);

  const fault::FaultPlan other = sample_plan(base, params, 54321);
  EXPECT_FALSE(once == other) << "distinct seeds drew identical plans";
}

TEST(Sampler, WindowsCloseBeforeTheHorizon) {
  const scenario::ScenarioSpec base = default_base_spec();
  const SamplerParams params;
  const common::SimTime horizon = static_cast<common::SimTime>(
      params.horizon_fraction * static_cast<double>(base.max_time));
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    const fault::FaultPlan plan = sample_plan(base, params, seed);
    EXPECT_LE(plan.horizon(), horizon) << "seed " << seed;
    EXPECT_LE(plan.seed, kManifestSeedMask);
  }
}

TEST(Sampler, EveryTrialSpecRoundTripsAsAManifest) {
  // The strict parser re-runs every cross-validation rule on reparse, so a
  // lossless round trip proves each sampled entry is in range.
  CampaignSpec campaign;
  campaign.base = default_base_spec();
  campaign.trials = 12;
  campaign.seed = 7;
  for (std::size_t i = 0; i < campaign.trials; ++i) {
    const scenario::ScenarioSpec spec = trial_spec(campaign, i);
    EXPECT_TRUE(spec.verify.enabled);
    EXPECT_LE(spec.seed, kManifestSeedMask);
    const std::string text = scenario::to_json_text(spec);
    const scenario::ScenarioSpec reparsed =
        scenario::parse_scenario(text, spec.name + ".json");
    EXPECT_TRUE(reparsed == spec) << spec.name << ": drifted across JSON";
  }
}

TEST(Campaign, VerifiedRunsDigestDeterministically) {
  scenario::ScenarioSpec spec = tiny_base();
  spec.verify.enabled = true;
  fault::PacketDropFault drop;
  drop.node = 1;
  drop.port = 0;
  drop.start = 2 * kMillisecond;
  drop.end = 10 * kMillisecond;
  drop.probability = 0.5;
  spec.faults.packet_drops.push_back(drop);

  const RunOutcome first = run_verified(spec);
  const RunOutcome second = run_verified(spec);
  EXPECT_TRUE(first.result.completed);
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_GT(first.result.retries, 0u);
}

TEST(Campaign, HealthyMiniCampaignComesBackClean) {
  CampaignSpec campaign;
  campaign.base = tiny_base();
  campaign.trials = 4;
  campaign.seed = 3;
  const CampaignResult result = run_campaign(campaign, /*threads=*/2);
  EXPECT_EQ(result.trials, 4u);
  EXPECT_EQ(result.clean_trials, 4u);
  EXPECT_TRUE(result.failures.empty());
}

TEST(Shrink, FailingSpecReducesToAMinimalBitIdenticalReproducer) {
  // Pad the wedging drop window with faults that do not matter, so the
  // drop pass has something to strip.
  scenario::ScenarioSpec failing = wedged_spec();
  fault::DeviceLatencyFault spike;
  spike.target = 0;
  spike.device = 0;
  spike.start = kMillisecond;
  spike.end = 2 * kMillisecond;
  spike.scale = 2.0;
  failing.faults.latency_spikes.push_back(spike);
  fault::TransientErrorFault flake;
  flake.target = 1;
  flake.device = 0;
  flake.start = kMillisecond;
  flake.end = 2 * kMillisecond;
  flake.probability = 0.05;
  failing.faults.transient_errors.push_back(flake);

  ShrinkOptions options;
  options.max_runs = 60;
  const ShrinkResult shrunk = shrink(failing, /*tpm=*/nullptr, options);

  ASSERT_TRUE(shrunk.reproduced);
  EXPECT_EQ(shrunk.checker, std::string(verify::kLivenessChecker));
  EXPECT_LT(shrunk.faults_after, shrunk.faults_before);
  EXPECT_GE(shrunk.faults_after, 1u);
  EXPECT_LE(shrunk.runs, options.max_runs);

  // The minimal spec survives a manifest round trip and replays the exact
  // digest the shrinker recorded — the reproducer really reproduces.
  const std::string text = scenario::to_json_text(shrunk.minimal);
  const scenario::ScenarioSpec reparsed =
      scenario::parse_scenario(text, "min.json");
  EXPECT_TRUE(reparsed == shrunk.minimal);

  const RunOutcome replay = run_verified(reparsed);
  EXPECT_EQ(replay.digest, shrunk.digest);
  ASSERT_FALSE(replay.report->clean());
  EXPECT_TRUE(std::any_of(
      replay.report->violations.begin(), replay.report->violations.end(),
      [&](const verify::Violation& v) { return v.checker == shrunk.checker; }));
}

}  // namespace
}  // namespace src::chaos
