#include "ssd/ftl.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ssd/device.hpp"

namespace src::ssd {
namespace {

FtlConfig tiny_config() {
  FtlConfig config;
  config.logical_pages = 256;
  config.pages_per_block = 8;
  config.chips = 4;
  config.overprovision = 0.25;
  config.gc_free_block_threshold = 2;
  return config;
}

TEST(FtlTest, UnmappedPagesHaveNoTranslation) {
  Ftl ftl(tiny_config());
  EXPECT_FALSE(ftl.translate(0).has_value());
  EXPECT_EQ(ftl.mapped_pages(), 0u);
}

TEST(FtlTest, WriteCreatesMapping) {
  Ftl ftl(tiny_config());
  const PhysicalPage physical = ftl.write(42);
  const auto mapped = ftl.translate(42);
  ASSERT_TRUE(mapped.has_value());
  EXPECT_EQ(mapped->chip, physical.chip);
  EXPECT_EQ(mapped->block, physical.block);
  EXPECT_EQ(mapped->page, physical.page);
  EXPECT_EQ(ftl.stats().host_writes, 1u);
}

TEST(FtlTest, OverwriteRemapsToFreshPage) {
  Ftl ftl(tiny_config());
  const PhysicalPage first = ftl.write(7);
  const PhysicalPage second = ftl.write(7);
  const bool same_slot = first.chip == second.chip &&
                         first.block == second.block && first.page == second.page;
  EXPECT_FALSE(same_slot);  // log-structured: never in place
  EXPECT_EQ(ftl.mapped_pages(), 1u);
}

TEST(FtlTest, DistinctLogicalPagesGetDistinctPhysicalPages) {
  Ftl ftl(tiny_config());
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> seen;
  for (std::uint64_t p = 0; p < 64; ++p) {
    const PhysicalPage physical = ftl.write(p);
    EXPECT_TRUE(seen.insert({physical.chip, physical.block, physical.page}).second);
  }
}

TEST(FtlTest, GcNotNeededWhileFresh) {
  Ftl ftl(tiny_config());
  EXPECT_FALSE(ftl.gc_needed());
  EXPECT_FALSE(ftl.plan_gc().has_value());
}

TEST(FtlTest, SustainedOverwritesTriggerGcAndReclaim) {
  Ftl ftl(tiny_config());
  common::Rng rng(5);
  std::uint64_t erases_done = 0;
  for (int i = 0; i < 4000; ++i) {
    int guard = 128;
    while (ftl.gc_needed() && guard-- > 0) {
      const auto plan = ftl.plan_gc();
      if (!plan) break;
      for (const auto logical : plan->valid_logical_pages) {
        ftl.rewrite_for_gc(logical, plan->chip);
      }
      ftl.finish_gc(*plan);
      ++erases_done;
    }
    ftl.write(rng.uniform_index(256));
  }
  EXPECT_GT(erases_done, 0u);
  EXPECT_EQ(ftl.stats().erases, erases_done);
  EXPECT_GT(ftl.stats().write_amplification(), 1.0);
  // Every logical page ever written must still translate.
  EXPECT_LE(ftl.mapped_pages(), 256u);
}

TEST(FtlTest, MappingSurvivesGc) {
  Ftl ftl(tiny_config());
  common::Rng rng(6);
  // Stamp each logical page with its own writes and verify translation
  // always points somewhere valid after heavy churn.
  for (int i = 0; i < 3000; ++i) {
    int guard = 128;
    while (ftl.gc_needed() && guard-- > 0) {
      const auto plan = ftl.plan_gc();
      if (!plan) break;
      for (const auto logical : plan->valid_logical_pages) {
        ftl.rewrite_for_gc(logical, plan->chip);
      }
      ftl.finish_gc(*plan);
    }
    ftl.write(rng.uniform_index(64));  // hot small set -> heavy churn
  }
  for (std::uint64_t p = 0; p < 64; ++p) {
    EXPECT_TRUE(ftl.translate(p).has_value()) << "page " << p;
  }
}

TEST(FtlTest, GcPlanOnlyListsValidPages) {
  FtlConfig config = tiny_config();
  config.chips = 1;
  Ftl ftl(config);
  // Fill one block (8 pages), then overwrite half of them, then write fresh
  // pages until the free pool reaches the GC threshold.
  for (std::uint64_t p = 0; p < 8; ++p) ftl.write(p);
  for (std::uint64_t p = 0; p < 4; ++p) ftl.write(p);
  std::uint64_t fresh = 100;
  while (!ftl.gc_needed()) ftl.write(fresh++);
  const auto plan = ftl.plan_gc();
  ASSERT_TRUE(plan.has_value());
  // Block 0 (the only one with garbage) is the greedy victim; it must list
  // only the still-valid owners 4..7.
  EXPECT_EQ(plan->valid_logical_pages.size(), 4u);
  for (const auto logical : plan->valid_logical_pages) {
    EXPECT_GE(logical, 4u);
    EXPECT_LE(logical, 7u);
  }
}

TEST(FtlTest, OverprovisionClampedToFloor) {
  FtlConfig config = tiny_config();
  config.overprovision = 0.0;
  Ftl ftl(config);  // must not throw; clamped internally to 0.10
  for (std::uint64_t p = 0; p < 64; ++p) ftl.write(p);
  EXPECT_EQ(ftl.mapped_pages(), 64u);
}

TEST(FtlTest, DegenerateGeometryThrows) {
  FtlConfig config = tiny_config();
  config.chips = 0;
  EXPECT_THROW(Ftl{config}, std::invalid_argument);
}

}  // namespace
}  // namespace src::ssd

namespace src::ssd {
namespace {

TEST(FtlTrimTest, TrimDropsMappingAndCountsGarbage) {
  FtlConfig config;
  config.logical_pages = 256;
  config.pages_per_block = 8;
  config.chips = 4;
  config.overprovision = 0.25;
  Ftl ftl(config);
  ftl.write(5);
  EXPECT_TRUE(ftl.translate(5).has_value());
  EXPECT_TRUE(ftl.trim(5));
  EXPECT_FALSE(ftl.translate(5).has_value());
  EXPECT_FALSE(ftl.trim(5));  // second trim is a no-op
  EXPECT_EQ(ftl.stats().trims, 1u);
}

TEST(FtlTrimTest, DeviceDeallocateCoversRange) {
  sim::Simulator sim;
  SsdConfig cfg = ssd_a();
  cfg.enable_gc = true;
  cfg.capacity_bytes = 1024ull * 16384;
  cfg.gc_pages_per_block = 16;
  cfg.write_cache_bytes = 0;
  SsdDevice device(sim, cfg, 1);
  for (std::uint64_t p = 0; p < 8; ++p) {
    NvmeCommand cmd;
    cmd.id = p;
    cmd.type = common::IoType::kWrite;
    cmd.lba = p * 16384;
    cmd.bytes = 16384;
    device.execute(cmd, [](const NvmeCompletion&) {});
  }
  sim.run();
  EXPECT_EQ(device.deallocate(0, 4 * 16384), 4u);  // pages 0..3
  EXPECT_EQ(device.deallocate(0, 4 * 16384), 0u);  // already trimmed
}

TEST(FtlTrimTest, DeallocateNoopWithoutFtl) {
  sim::Simulator sim;
  SsdDevice device(sim, ssd_a(), 1);  // GC disabled -> no FTL
  EXPECT_EQ(device.deallocate(0, 1 << 20), 0u);
}

TEST(FtlTrimTest, TrimReducesGcPressure) {
  // Fill the device, then TRIM the cold half (a deleted file) and churn the
  // hot half: with the trim, GC reclaims the freed blocks cheaply and write
  // amplification drops versus leaving the stale data valid.
  auto wa = [](bool use_trim) {
    sim::Simulator sim;
    SsdConfig cfg = ssd_a();
    cfg.enable_gc = true;
    cfg.capacity_bytes = 1024ull * 16384;
    cfg.gc_pages_per_block = 16;
    cfg.gc_overprovision = 0.12;
    cfg.write_cache_bytes = 0;
    SsdDevice device(sim, cfg, 1);
    common::Rng rng(5);
    std::uint64_t id = 0;
    auto write_page = [&](std::uint64_t page) {
      NvmeCommand cmd;
      cmd.id = id++;
      cmd.type = common::IoType::kWrite;
      cmd.lba = page * 16384;
      cmd.bytes = 16384;
      device.execute(cmd, [](const NvmeCompletion&) {});
    };
    for (std::uint64_t p = 0; p < 1024; ++p) write_page(p);
    sim.run();
    if (use_trim) device.deallocate(512 * 16384, 512 * 16384);  // cold half
    for (int i = 0; i < 4000; ++i) write_page(rng.uniform_index(512));  // hot half
    sim.run();
    return device.write_amplification();
  };
  EXPECT_LT(wa(true), wa(false) * 0.9);
}

}  // namespace
}  // namespace src::ssd

namespace src::ssd {
namespace {

TEST(FtlWearTest, FreshDeviceHasZeroWear) {
  FtlConfig config;
  config.logical_pages = 256;
  config.pages_per_block = 8;
  config.chips = 4;
  const Ftl ftl(config);
  const auto wear = ftl.wear_summary();
  EXPECT_EQ(wear.min_erases, 0u);
  EXPECT_EQ(wear.max_erases, 0u);
  EXPECT_DOUBLE_EQ(wear.mean_erases, 0.0);
}

TEST(FtlWearTest, ChurnAccumulatesErasesConsistently) {
  FtlConfig config;
  config.logical_pages = 256;
  config.pages_per_block = 8;
  config.chips = 4;
  config.overprovision = 0.25;
  Ftl ftl(config);
  common::Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    int guard = 64;
    while (ftl.gc_needed() && guard-- > 0) {
      const auto plan = ftl.plan_gc();
      if (!plan) break;
      for (const auto logical : plan->valid_logical_pages) {
        ftl.rewrite_for_gc(logical, plan->chip);
      }
      ftl.finish_gc(*plan);
    }
    ftl.write(rng.uniform_index(256));
  }
  const auto wear = ftl.wear_summary();
  EXPECT_GT(wear.max_erases, 0u);
  EXPECT_GE(wear.max_erases, wear.min_erases);
  EXPECT_GT(wear.mean_erases, 0.0);
  EXPECT_GT(ftl.stats().erases, 0u);
}

}  // namespace
}  // namespace src::ssd
