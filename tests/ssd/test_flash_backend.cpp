#include "ssd/flash_backend.hpp"

#include <gtest/gtest.h>

namespace src::ssd {
namespace {

SsdConfig tiny_config() {
  SsdConfig cfg;
  cfg.channels = 2;
  cfg.chips_per_channel = 2;
  cfg.read_latency = 100;
  cfg.write_latency = 300;
  cfg.page_bytes = 1000;
  cfg.channel_bandwidth = common::Rate::bytes_per_second(1e9);  // 1 us/page
  return cfg;
}

TEST(FlashBackendTest, PlacementStripesChannelsFirst) {
  const FlashBackend backend(tiny_config());
  EXPECT_EQ(backend.place(0).channel, 0u);
  EXPECT_EQ(backend.place(1).channel, 1u);
  EXPECT_EQ(backend.place(2).channel, 0u);
  EXPECT_EQ(backend.place(0).chip, 0u);
  EXPECT_EQ(backend.place(2).chip, 1u);  // second round on channel 0
  EXPECT_EQ(backend.place(4).chip, 0u);  // wraps at chips_per_channel
}

TEST(FlashBackendTest, ReadIsSenseThenTransfer) {
  FlashBackend backend(tiny_config());
  const auto finish = backend.schedule_read_page(backend.place(0), 0);
  // sense 100 ns + transfer 1000 ns.
  EXPECT_EQ(finish, 1100);
}

TEST(FlashBackendTest, ProgramIsTransferThenProgram) {
  FlashBackend backend(tiny_config());
  const auto finish = backend.schedule_program_page(backend.place(0), 0);
  EXPECT_EQ(finish, 1300);
}

TEST(FlashBackendTest, SameChipSerializes) {
  FlashBackend backend(tiny_config());
  const auto p = backend.place(0);
  const auto first = backend.schedule_read_page(p, 0);
  const auto second = backend.schedule_read_page(p, 0);
  EXPECT_GT(second, first);
  // Second sense waits for the first sense (100..200); its bus transfer then
  // waits for the first transfer to release the channel (until 1100), so it
  // finishes at 2100 — the channel, not the chip, is the bottleneck here.
  EXPECT_EQ(second, 2100);
}

TEST(FlashBackendTest, DifferentChannelsRunInParallel) {
  FlashBackend backend(tiny_config());
  const auto a = backend.schedule_read_page(backend.place(0), 0);
  const auto b = backend.schedule_read_page(backend.place(1), 0);
  EXPECT_EQ(a, b);  // fully parallel
}

TEST(FlashBackendTest, SameChannelDifferentChipsShareBus) {
  FlashBackend backend(tiny_config());
  // Pages 0 and 2 are channel 0, chips 0 and 1.
  const auto a = backend.schedule_read_page(backend.place(0), 0);
  const auto b = backend.schedule_read_page(backend.place(2), 0);
  // Senses overlap; second transfer waits for the first one's bus slot.
  EXPECT_EQ(a, 1100);
  EXPECT_EQ(b, 2100);
}

TEST(FlashBackendTest, ReadsAndWritesInterfereOnChip) {
  FlashBackend backend(tiny_config());
  const auto p = backend.place(0);
  backend.schedule_program_page(p, 0);              // chip busy until 1300
  const auto read_done = backend.schedule_read_page(p, 0);
  EXPECT_GE(read_done, 1300 + 100);
}

TEST(FlashBackendTest, UtilizationGrowsWithWork) {
  FlashBackend backend(tiny_config());
  EXPECT_DOUBLE_EQ(backend.mean_chip_utilization(1000), 0.0);
  backend.schedule_read_page(backend.place(0), 0);
  EXPECT_GT(backend.mean_chip_utilization(1000), 0.0);
}

TEST(FlashBackendTest, ChipCount) {
  EXPECT_EQ(FlashBackend(tiny_config()).chip_count(), 4u);
}

}  // namespace
}  // namespace src::ssd
