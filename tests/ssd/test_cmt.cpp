#include "ssd/cmt.hpp"

#include <gtest/gtest.h>

namespace src::ssd {
namespace {

TEST(CmtTest, FirstAccessIsMiss) {
  CachedMappingTable cmt(4);
  EXPECT_FALSE(cmt.access(1));
  EXPECT_EQ(cmt.misses(), 1u);
  EXPECT_EQ(cmt.hits(), 0u);
}

TEST(CmtTest, RepeatAccessIsHit) {
  CachedMappingTable cmt(4);
  cmt.access(1);
  EXPECT_TRUE(cmt.access(1));
  EXPECT_EQ(cmt.hits(), 1u);
}

TEST(CmtTest, EvictsLeastRecentlyUsed) {
  CachedMappingTable cmt(2);
  cmt.access(1);
  cmt.access(2);
  cmt.access(1);      // 1 is now MRU
  cmt.access(3);      // evicts 2
  EXPECT_TRUE(cmt.access(1));
  EXPECT_TRUE(cmt.access(3));
  EXPECT_FALSE(cmt.access(2));  // was evicted
}

TEST(CmtTest, CapacityRespected) {
  CachedMappingTable cmt(8);
  for (std::uint64_t p = 0; p < 100; ++p) cmt.access(p);
  EXPECT_EQ(cmt.size(), 8u);
}

TEST(CmtTest, ZeroCapacityClampsToOne) {
  CachedMappingTable cmt(0);
  EXPECT_EQ(cmt.capacity(), 1u);
  cmt.access(1);
  EXPECT_TRUE(cmt.access(1));
  cmt.access(2);
  EXPECT_FALSE(cmt.access(1));
}

TEST(CmtTest, HitRatio) {
  CachedMappingTable cmt(16);
  for (int round = 0; round < 4; ++round) {
    for (std::uint64_t p = 0; p < 8; ++p) cmt.access(p);
  }
  // 8 misses, 24 hits.
  EXPECT_DOUBLE_EQ(cmt.hit_ratio(), 24.0 / 32.0);
}

TEST(CmtTest, SequentialScanLargerThanCapacityAlwaysMisses) {
  CachedMappingTable cmt(4);
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t p = 0; p < 16; ++p) EXPECT_FALSE(cmt.access(p));
  }
}

}  // namespace
}  // namespace src::ssd
