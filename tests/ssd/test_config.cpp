#include "ssd/config.hpp"

#include <gtest/gtest.h>

namespace src::ssd {
namespace {

using common::kMicrosecond;

// Table II of the paper.
TEST(SsdConfigTest, SsdAMatchesTableII) {
  const SsdConfig cfg = ssd_a();
  EXPECT_EQ(cfg.queue_depth, 128u);
  EXPECT_EQ(cfg.write_cache_bytes, 256ull << 20);
  EXPECT_EQ(cfg.cmt_bytes, 2ull << 20);
  EXPECT_EQ(cfg.page_bytes, 16ull << 10);
  EXPECT_EQ(cfg.read_latency, 75 * kMicrosecond);
  EXPECT_EQ(cfg.write_latency, 300 * kMicrosecond);
}

TEST(SsdConfigTest, SsdBMatchesTableII) {
  const SsdConfig cfg = ssd_b();
  EXPECT_EQ(cfg.queue_depth, 512u);
  EXPECT_EQ(cfg.write_cache_bytes, 256ull << 20);
  EXPECT_EQ(cfg.cmt_bytes, 2ull << 20);
  EXPECT_EQ(cfg.page_bytes, 16ull << 10);
  EXPECT_EQ(cfg.read_latency, 2 * kMicrosecond);
  EXPECT_EQ(cfg.write_latency, 100 * kMicrosecond);
}

TEST(SsdConfigTest, SsdCMatchesTableII) {
  const SsdConfig cfg = ssd_c();
  EXPECT_EQ(cfg.queue_depth, 512u);
  EXPECT_EQ(cfg.write_cache_bytes, 512ull << 20);
  EXPECT_EQ(cfg.cmt_bytes, 8ull << 20);
  EXPECT_EQ(cfg.page_bytes, 8ull << 10);
  EXPECT_EQ(cfg.read_latency, 30 * kMicrosecond);
  EXPECT_EQ(cfg.write_latency, 200 * kMicrosecond);
}

TEST(SsdConfigTest, LookupByName) {
  EXPECT_EQ(config_by_name("SSD-A").name, "SSD-A");
  EXPECT_EQ(config_by_name("SSD-B").name, "SSD-B");
  EXPECT_EQ(config_by_name("SSD-C").name, "SSD-C");
  EXPECT_THROW(config_by_name("SSD-Z"), std::invalid_argument);
}

TEST(SsdConfigTest, DerivedQuantities) {
  const SsdConfig cfg = ssd_a();
  EXPECT_EQ(cfg.parallel_units(), cfg.channels * cfg.chips_per_channel);
  EXPECT_EQ(cfg.total_pages(), cfg.capacity_bytes / cfg.page_bytes);
  EXPECT_EQ(cfg.cmt_entries(), cfg.cmt_bytes / cfg.mapping_entry_bytes);
  EXPECT_EQ(cfg.mapping_miss_penalty(), cfg.read_latency);
  EXPECT_GT(cfg.channel_transfer_time(), 0);
}

TEST(SsdConfigTest, ExplicitMissPenaltyOverrides) {
  SsdConfig cfg = ssd_a();
  cfg.cmt_miss_penalty = 5 * kMicrosecond;
  EXPECT_EQ(cfg.mapping_miss_penalty(), 5 * kMicrosecond);
}

}  // namespace
}  // namespace src::ssd
