#include "ssd/device.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace src::ssd {
namespace {

using common::IoType;
using common::SimTime;

SsdConfig small_config() {
  SsdConfig cfg = ssd_a();
  cfg.write_cache_bytes = 1ull << 20;  // 1 MiB so cache pressure is testable
  cfg.cache_ack_watermark = 0.5;       // absorb bursts up to 512 KiB
  cfg.cmt_bytes = 64 * 8;              // 64 entries
  cfg.capacity_bytes = 1ull << 30;
  return cfg;
}

struct Harness {
  sim::Simulator sim;
  SsdDevice device;
  std::vector<NvmeCompletion> completions;

  explicit Harness(SsdConfig cfg = small_config()) : device(sim, cfg, 1) {}

  void run(const NvmeCommand& cmd) {
    device.execute(cmd, [this](const NvmeCompletion& c) { completions.push_back(c); });
  }

  NvmeCommand cmd(std::uint64_t id, IoType type, std::uint64_t lba,
                  std::uint32_t bytes) const {
    NvmeCommand c;
    c.id = id;
    c.type = type;
    c.lba = lba;
    c.bytes = bytes;
    return c;
  }
};

TEST(SsdDeviceTest, ReadCompletesAfterFlashLatency) {
  Harness h;
  h.run(h.cmd(1, IoType::kRead, 0, 16384));
  h.sim.run();
  ASSERT_EQ(h.completions.size(), 1u);
  const auto& c = h.completions[0];
  EXPECT_EQ(c.id, 1u);
  EXPECT_EQ(c.type, IoType::kRead);
  // At least overhead + mapping read (CMT cold miss) + sense + transfer.
  EXPECT_GE(c.complete_time,
            h.device.config().command_overhead + h.device.config().read_latency);
}

TEST(SsdDeviceTest, WriteAbsorbedByCacheIsFast) {
  Harness h;
  h.run(h.cmd(1, IoType::kWrite, 0, 16384));
  // The ack should arrive at DRAM speed, far below flash program latency.
  h.sim.run_until(50 * common::kMicrosecond);
  ASSERT_EQ(h.completions.size(), 1u);
  EXPECT_TRUE(h.completions[0].served_from_cache);
  EXPECT_LT(h.completions[0].complete_time, h.device.config().write_latency);
}

TEST(SsdDeviceTest, CacheDrainsInBackground) {
  Harness h;
  h.run(h.cmd(1, IoType::kWrite, 0, 16384));
  h.sim.run();
  EXPECT_EQ(h.device.cache_used_bytes(), 0u);  // drained after quiesce
  EXPECT_EQ(h.device.stats().cache_absorbed_writes, 1u);
}

TEST(SsdDeviceTest, CachePressureFallsBackToSyncWrites) {
  Harness h;
  // Flood far beyond the 512 KiB absorption watermark in one instant.
  for (std::uint64_t i = 0; i < 200; ++i) {
    h.run(h.cmd(i, IoType::kWrite, i * 16384, 16384));
  }
  h.sim.run();
  EXPECT_EQ(h.completions.size(), 200u);
  EXPECT_GT(h.device.stats().sync_writes, 0u);
  EXPECT_GT(h.device.stats().cache_absorbed_writes, 0u);
}

TEST(SsdDeviceTest, AdmissionGateReflectsBacklog) {
  Harness h;
  EXPECT_TRUE(h.device.admission_ok(0, 16384));
  // Pile synchronous work on every chip until the window is exceeded.
  for (std::uint64_t i = 0; i < 400; ++i) {
    h.run(h.cmd(i, IoType::kRead, i * 16384, 16384));
  }
  EXPECT_FALSE(h.device.admission_ok(0, 16384));
  h.sim.run();
  EXPECT_TRUE(h.device.admission_ok(0, 16384));
}

TEST(SsdDeviceTest, ReadHitsDirtyCachePage) {
  Harness h;
  h.run(h.cmd(1, IoType::kWrite, 0, 16384));
  // Immediately read the same page while it is still dirty in DRAM.
  h.run(h.cmd(2, IoType::kRead, 0, 16384));
  h.sim.run_until(20 * common::kMicrosecond);
  ASSERT_EQ(h.completions.size(), 2u);
  EXPECT_GT(h.device.stats().cache_read_hits, 0u);
}

TEST(SsdDeviceTest, MultiPageCommandSpansPages) {
  Harness h;
  h.run(h.cmd(1, IoType::kRead, 0, 64 * 1024));  // 4 pages of 16 KiB
  h.sim.run();
  ASSERT_EQ(h.completions.size(), 1u);
  EXPECT_EQ(h.device.stats().read_bytes, 64u * 1024);
}

TEST(SsdDeviceTest, UnalignedRequestTouchesExtraPage) {
  Harness h;
  // 16 KiB starting 1 KiB into a page covers 2 pages.
  h.run(h.cmd(1, IoType::kRead, 1024, 16384));
  h.sim.run();
  ASSERT_EQ(h.completions.size(), 1u);
}

TEST(SsdDeviceTest, ParallelReadsFasterThanSerial) {
  // Reads spread over distinct channels complete sooner than the same
  // number of reads hammering one chip.
  Harness parallel;
  for (std::uint64_t i = 0; i < 4; ++i) {
    // Page stride 1 -> rotate across channels.
    parallel.run(parallel.cmd(i, IoType::kRead, i * 16384, 16384));
  }
  parallel.sim.run();
  SimTime parallel_finish = 0;
  for (const auto& c : parallel.completions) {
    parallel_finish = std::max(parallel_finish, c.complete_time);
  }

  Harness serial;
  const std::uint32_t stride = serial.device.config().channels *
                               serial.device.config().chips_per_channel;
  for (std::uint64_t i = 0; i < 4; ++i) {
    serial.run(serial.cmd(i, IoType::kRead, i * stride * 16384, 16384));
  }
  serial.sim.run();
  SimTime serial_finish = 0;
  for (const auto& c : serial.completions) {
    serial_finish = std::max(serial_finish, c.complete_time);
  }

  EXPECT_LT(parallel_finish, serial_finish);
}

TEST(SsdDeviceTest, CmtMissAddsLatency) {
  SsdConfig big_cmt = small_config();
  big_cmt.cmt_bytes = 1ull << 20;  // effectively no misses after warmup

  // Warm: first access misses, second hits.
  Harness h(big_cmt);
  h.run(h.cmd(1, IoType::kRead, 0, 16384));
  h.sim.run();
  const SimTime cold = h.completions[0].complete_time;
  h.run(h.cmd(2, IoType::kRead, 0, 16384));
  h.sim.run();
  const SimTime warm = h.completions[1].complete_time - cold;
  EXPECT_LT(warm, cold);  // warm read skips the mapping read
}

TEST(SsdDeviceTest, StatsAccumulate) {
  Harness h;
  h.run(h.cmd(1, IoType::kRead, 0, 16384));
  h.run(h.cmd(2, IoType::kWrite, 1 << 20, 32768));
  h.sim.run();
  EXPECT_EQ(h.device.stats().reads_completed, 1u);
  EXPECT_EQ(h.device.stats().writes_completed, 1u);
  EXPECT_EQ(h.device.stats().read_bytes, 16384u);
  EXPECT_EQ(h.device.stats().write_bytes, 32768u);
  EXPECT_GT(h.device.mean_chip_utilization(), 0.0);
}

TEST(SsdDeviceTest, GcTriggersUnderSustainedOverwrites) {
  SsdConfig cfg = small_config();
  cfg.enable_gc = true;
  cfg.capacity_bytes = 2048ull * 16384;  // 2048 logical pages
  cfg.gc_pages_per_block = 16;
  cfg.gc_overprovision = 0.10;
  cfg.write_cache_bytes = 0;  // force sync writes so pages program immediately
  Harness h(cfg);
  // Write the whole logical space twice: the second pass invalidates the
  // first and must force erases.
  std::uint64_t id = 0;
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t p = 0; p < 2048; ++p) {
      h.run(h.cmd(id++, IoType::kWrite, p * 16384, 16384));
    }
  }
  h.sim.run();
  EXPECT_GT(h.device.stats().gc_invocations, 0u);
  EXPECT_GT(h.device.stats().gc_erases, 0u);
  EXPECT_GE(h.device.write_amplification(), 1.0);
}

TEST(SsdDeviceTest, GcReadsFollowRelocatedPages) {
  SsdConfig cfg = small_config();
  cfg.enable_gc = true;
  cfg.capacity_bytes = 1024ull * 16384;
  cfg.gc_pages_per_block = 16;
  cfg.write_cache_bytes = 0;
  Harness h(cfg);
  std::uint64_t id = 0;
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t p = 0; p < 1024; ++p) {
      h.run(h.cmd(id++, IoType::kWrite, p * 16384, 16384));
    }
  }
  h.sim.run();
  // Every page is mapped; reads must still complete through the FTL path.
  const auto before = h.completions.size();
  for (std::uint64_t p = 0; p < 64; ++p) {
    h.run(h.cmd(id++, IoType::kRead, p * 16384, 16384));
  }
  h.sim.run();
  EXPECT_EQ(h.completions.size(), before + 64);
}

TEST(SsdDeviceTest, WriteAmplificationGrowsWithLessOverprovision) {
  auto wa = [](double op) {
    SsdConfig cfg = small_config();
    cfg.enable_gc = true;
    cfg.capacity_bytes = 2048ull * 16384;
    cfg.gc_pages_per_block = 16;
    cfg.gc_overprovision = op;
    cfg.write_cache_bytes = 0;
    Harness h(cfg);
    common::Rng rng(3);
    for (std::uint64_t i = 0; i < 8000; ++i) {
      h.run(h.cmd(i, IoType::kWrite, rng.uniform_index(2048) * 16384, 16384));
    }
    h.sim.run();
    return h.device.write_amplification();
  };
  EXPECT_GT(wa(0.15), wa(0.40));
}

TEST(SsdDeviceTest, CompletionTimesAreMonotonicWithSubmission) {
  // Not strictly monotonic in general, but a single-page read stream on one
  // chip must complete in order.
  Harness h;
  const std::uint32_t stride = h.device.config().channels *
                               h.device.config().chips_per_channel * 16384;
  for (std::uint64_t i = 0; i < 8; ++i) {
    h.run(h.cmd(i, IoType::kRead, i * stride, 16384));  // all on chip 0
  }
  h.sim.run();
  ASSERT_EQ(h.completions.size(), 8u);
  for (std::size_t i = 1; i < h.completions.size(); ++i) {
    EXPECT_GE(h.completions[i].complete_time, h.completions[i - 1].complete_time);
  }
}

}  // namespace
}  // namespace src::ssd
