#include <gtest/gtest.h>

#include <map>

#include "nvme/fifo_driver.hpp"
#include "ssd/device.hpp"

#include "workload/micro.hpp"

namespace src::workload {
namespace {

std::map<std::uint64_t, std::size_t> lba_histogram(const Trace& trace) {
  std::map<std::uint64_t, std::size_t> hist;
  for (const auto& rec : trace) ++hist[rec.lba];
  return hist;
}

TEST(ZipfWorkloadTest, UniformByDefault) {
  MicroParams params = symmetric_micro(10.0, 16 * 1024, 20'000);
  params.lba_space_bytes = 256ull * 4096;  // small space -> measurable counts
  const auto hist = lba_histogram(generate_micro(params, 3));
  // Max/mean ratio stays small for uniform draws.
  std::size_t max_count = 0, total = 0;
  for (const auto& [lba, count] : hist) {
    max_count = std::max(max_count, count);
    total += count;
  }
  const double mean = static_cast<double>(total) / 256.0;
  EXPECT_LT(static_cast<double>(max_count), 2.5 * mean);
}

TEST(ZipfWorkloadTest, SkewConcentratesAccesses) {
  MicroParams params = symmetric_micro(10.0, 16 * 1024, 20'000);
  params.lba_space_bytes = 4096ull * 4096;
  params.zipf_theta = 0.99;
  const auto hist = lba_histogram(generate_micro(params, 3));
  // The hottest 1% of pages must absorb a large share of accesses.
  std::vector<std::size_t> counts;
  std::size_t total = 0;
  for (const auto& [lba, count] : hist) {
    counts.push_back(count);
    total += count;
  }
  std::sort(counts.rbegin(), counts.rend());
  std::size_t hot = 0;
  for (std::size_t i = 0; i < counts.size() / 100 + 1; ++i) hot += counts[i];
  EXPECT_GT(static_cast<double>(hot) / static_cast<double>(total), 0.25);
}

TEST(ZipfWorkloadTest, SkewImprovesCmtHitRate) {
  // The practical consequence: hot-set locality lifts the CMT hit ratio on
  // a device whose CMT covers a fraction of the address space.
  auto hit_ratio = [](double theta) {
    MicroParams params = symmetric_micro(20.0, 16 * 1024, 4000);
    params.lba_space_bytes = 16ull << 30;  // 4x the default CMT coverage
    params.zipf_theta = theta;
    const auto trace = generate_micro(params, 7);
    sim::Simulator sim;
    ssd::SsdDevice device(sim, ssd::ssd_a(), 1);
    nvme::FifoDriver driver(sim, device);
    for (const auto& rec : trace) {
      sim.schedule_at(rec.arrival, [&driver, rec, &sim] {
        nvme::IoRequest request;
        request.type = rec.type;
        request.lba = rec.lba;
        request.bytes = rec.bytes;
        request.arrival = sim.now();
        driver.submit(request);
      });
    }
    sim.run();
    return device.cmt_hit_ratio();
  };
  EXPECT_GT(hit_ratio(0.99), hit_ratio(0.0) + 0.1);
}

TEST(ZipfWorkloadTest, DeterministicForSeed) {
  MicroParams params = symmetric_micro(10.0, 16 * 1024, 1000);
  params.zipf_theta = 0.8;
  const Trace a = generate_micro(params, 5);
  const Trace b = generate_micro(params, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].lba, b[i].lba);
}

}  // namespace
}  // namespace src::workload
