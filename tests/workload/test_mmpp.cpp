#include "workload/mmpp.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace src::workload {
namespace {

TEST(Mmpp2Test, StationaryMeanRate) {
  Mmpp2Params params;
  params.rate_quiet = 10'000;
  params.rate_burst = 100'000;
  params.sojourn_quiet_s = 4e-3;
  params.sojourn_burst_s = 1e-3;
  // pi_burst = 0.2 -> mean = 0.8*10k + 0.2*100k = 28k.
  EXPECT_NEAR(params.mean_rate(), 28'000.0, 1e-6);
  EXPECT_NEAR(params.burst_fraction(), 0.2, 1e-12);
}

TEST(Mmpp2Test, GeneratorMatchesAnalyticMean) {
  Mmpp2Params params;
  params.rate_quiet = 20'000;
  params.rate_burst = 200'000;
  params.sojourn_quiet_s = 2e-3;
  params.sojourn_burst_s = 0.5e-3;
  Mmpp2Generator gen(params, common::Rng(3));
  common::RunningStats stats;
  for (int i = 0; i < 300'000; ++i) stats.add(gen.next_iat_us());
  EXPECT_NEAR(stats.mean(), params.mean_iat_us(), params.mean_iat_us() * 0.03);
}

TEST(Mmpp2Test, BurstyProcessHasHighScv) {
  Mmpp2Params params;
  params.rate_quiet = 5'000;
  params.rate_burst = 500'000;
  params.sojourn_quiet_s = 10e-3;
  params.sojourn_burst_s = 2e-3;
  Mmpp2Generator gen(params, common::Rng(4));
  common::RunningStats stats;
  for (int i = 0; i < 200'000; ++i) stats.add(gen.next_iat_us());
  EXPECT_GT(stats.scv(), 2.0);
}

TEST(FitMmpp2Test, PoissonWhenScvIsOne) {
  const auto params = fit_mmpp2(10.0, 1.0);
  EXPECT_DOUBLE_EQ(params.rate_quiet, params.rate_burst);
  EXPECT_NEAR(params.mean_iat_us(), 10.0, 1e-9);
}

TEST(FitMmpp2Test, HitsTargetScv) {
  for (double target : {2.0, 4.0, 8.0}) {
    const auto params = fit_mmpp2(10.0, target);
    Mmpp2Generator gen(params, common::Rng(99));
    common::RunningStats stats;
    for (int i = 0; i < 200'000; ++i) stats.add(gen.next_iat_us());
    EXPECT_NEAR(stats.mean(), 10.0, 1.0) << "target scv " << target;
    EXPECT_NEAR(stats.scv(), target, target * 0.25) << "target scv " << target;
  }
}

TEST(SyntheticTest, DeterministicAndSorted) {
  const auto params = fujitsu_vdi_like(500);
  const Trace a = generate_synthetic(params, 5);
  const Trace b = generate_synthetic(params, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    if (i > 0) {
      EXPECT_LE(a[i - 1].arrival, a[i].arrival);
    }
  }
}

TEST(SyntheticTest, VdiPresetMatchesPaperStatistics) {
  const Trace trace = generate_synthetic(fujitsu_vdi_like(20'000), 21);
  const auto stats = analyze(trace);
  // Paper SIV-D: read 44 KB / write 23 KB mean sizes, ~10 us IATs both.
  EXPECT_NEAR(stats.read.mean_size_bytes, 44.0 * 1024, 4000.0);
  EXPECT_NEAR(stats.write.mean_size_bytes, 23.0 * 1024, 2500.0);
  EXPECT_NEAR(stats.read.mean_iat_us, 10.0, 1.0);
  EXPECT_NEAR(stats.write.mean_iat_us, 10.0, 1.0);
  // Bursty arrivals: SCV well above Poisson.
  EXPECT_GT(stats.read.scv_iat, 1.5);
}

TEST(SyntheticTest, CbsPresetIsWriteHeavy) {
  const Trace trace = generate_synthetic(tencent_cbs_like(10'000), 23);
  const auto stats = analyze(trace);
  EXPECT_GT(stats.write.flow_speed_bytes_per_sec, stats.read.flow_speed_bytes_per_sec);
}

TEST(SyntheticTest, SizeScvControlled) {
  SyntheticParams params = fujitsu_vdi_like(20'000);
  params.read.size_scv = 0.1;
  const Trace low = generate_synthetic(params, 31);
  params.read.size_scv = 3.0;
  const Trace high = generate_synthetic(params, 31);
  EXPECT_LT(analyze(low).read.scv_size, analyze(high).read.scv_size);
}

}  // namespace
}  // namespace src::workload
