#include "workload/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/micro.hpp"

namespace src::workload {
namespace {

TEST(TraceIoTest, ParsesBasicCsv) {
  std::istringstream in(
      "timestamp_us,op,lba,bytes\n"
      "0,R,4096,8192\n"
      "10.5,W,0,4096\n");
  const Trace trace = read_csv_trace(in);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].type, common::IoType::kRead);
  EXPECT_EQ(trace[0].lba, 4096u);
  EXPECT_EQ(trace[0].bytes, 8192u);
  EXPECT_EQ(trace[1].arrival, common::microseconds(10.5));
  EXPECT_EQ(trace[1].type, common::IoType::kWrite);
}

TEST(TraceIoTest, AcceptsWordOpsAndComments) {
  std::istringstream in(
      "# a comment\n"
      "0,read,0,4096\n"
      "\n"
      "5,WRITE,4096,4096\n");
  const Trace trace = read_csv_trace(in);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].type, common::IoType::kRead);
  EXPECT_EQ(trace[1].type, common::IoType::kWrite);
}

TEST(TraceIoTest, SortsOutOfOrderTimestamps) {
  std::istringstream in(
      "20,R,0,4096\n"
      "10,W,0,4096\n");
  const Trace trace = read_csv_trace(in);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_LT(trace[0].arrival, trace[1].arrival);
}

TEST(TraceIoTest, RejectsMalformedRows) {
  auto expect_throw = [](const char* text) {
    std::istringstream in(text);
    EXPECT_THROW(read_csv_trace(in), std::runtime_error) << text;
  };
  expect_throw("0,R,4096\n");            // too few columns
  expect_throw("0,R,4096,1,extra\n");    // too many columns
  expect_throw("0,X,4096,4096\n");       // unknown op
  expect_throw("abc,R,0,4096\n0,R,0,4096\nxyz,R,0,4096\n");  // bad number mid-file
  expect_throw("0,R,0,0\n");             // zero bytes
  expect_throw("-5,R,0,4096\n");         // negative timestamp
}

TEST(TraceIoTest, RoundTripPreservesTrace) {
  const Trace original =
      generate_micro(symmetric_micro(20.0, 16 * 1024, 300), 7);
  std::stringstream buffer;
  write_csv_trace(buffer, original);
  const Trace parsed = read_csv_trace(buffer);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed[i].type, original[i].type);
    EXPECT_EQ(parsed[i].lba, original[i].lba);
    EXPECT_EQ(parsed[i].bytes, original[i].bytes);
    // Timestamps round-trip through decimal microseconds: sub-ns drift only.
    EXPECT_NEAR(static_cast<double>(parsed[i].arrival),
                static_cast<double>(original[i].arrival), 1000.0);
  }
}

TEST(TraceIoTest, FileRoundTrip) {
  const Trace original = generate_micro(symmetric_micro(20.0, 16 * 1024, 50), 9);
  const std::string path = ::testing::TempDir() + "/trace_io_test.csv";
  write_csv_trace_file(path, original);
  const Trace parsed = read_csv_trace_file(path);
  EXPECT_EQ(parsed.size(), original.size());
}

TEST(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(read_csv_trace_file("/nonexistent/nowhere.csv"), std::runtime_error);
}

}  // namespace
}  // namespace src::workload
