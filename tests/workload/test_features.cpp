#include "workload/features.hpp"

#include <gtest/gtest.h>

#include "workload/micro.hpp"

namespace src::workload {
namespace {

TEST(FeaturesTest, ArrayLayoutAndNames) {
  WorkloadFeatures f;
  f.read_ratio = 0.5;
  f.write_flow_speed = 123.0;
  f.write_mean_size = 456.0;
  const auto arr = f.as_array();
  EXPECT_EQ(arr.size(), WorkloadFeatures::kCount);
  EXPECT_DOUBLE_EQ(arr[0], 0.5);
  EXPECT_DOUBLE_EQ(arr[6], 123.0);
  EXPECT_DOUBLE_EQ(arr[8], 456.0);
  EXPECT_EQ(WorkloadFeatures::names()[0], "read_ratio");
  EXPECT_EQ(WorkloadFeatures::names()[6], "write_flow_speed");
  EXPECT_EQ(WorkloadFeatures::names()[8], "write_mean_size");
}

TEST(FeaturesTest, ExtractFromMicroTrace) {
  const Trace trace = generate_micro(symmetric_micro(10.0, 32 * 1024, 5000), 3);
  const auto f = extract_features(trace);
  EXPECT_NEAR(f.read_ratio, 0.5, 0.02);
  EXPECT_GT(f.read_flow_speed, 0.0);
  EXPECT_GT(f.write_flow_speed, 0.0);
  EXPECT_NEAR(f.read_iat_scv, 1.0, 0.2);  // exponential
}

TEST(FeaturesTest, ExplicitWindowRescalesFlowSpeed) {
  Trace trace{{common::microseconds(0), common::IoType::kRead, 0, 100'000},
              {common::microseconds(10), common::IoType::kRead, 0, 100'000}};
  // Observed span is 10 us, but the monitor window is 1 ms: flow speed must
  // use the window.
  const auto f = extract_features(trace, common::kMillisecond);
  EXPECT_NEAR(f.read_flow_speed, 200'000 / 1e-3, 1.0);
}

TEST(FeaturesTest, EmptyWindowIsZero) {
  const auto f = extract_features(std::span<const TraceRecord>{});
  EXPECT_DOUBLE_EQ(f.read_flow_speed, 0.0);
  EXPECT_DOUBLE_EQ(f.read_ratio, 0.0);
}

TEST(FeaturesTest, ReadHeavyMixReflected) {
  MicroParams params = symmetric_micro(10.0, 32 * 1024, 4000);
  params.write.count = 1000;
  params.write.mean_iat_us = 40.0;
  const auto f = extract_features(generate_micro(params, 17));
  EXPECT_GT(f.read_ratio, 0.7);
  EXPECT_GT(f.read_flow_speed, 2.0 * f.write_flow_speed);
}

}  // namespace
}  // namespace src::workload
