#include "workload/micro.hpp"

#include <gtest/gtest.h>

namespace src::workload {
namespace {

TEST(MicroTest, DeterministicForSeed) {
  const auto params = symmetric_micro(10.0, 32 * 1024, 500);
  const Trace a = generate_micro(params, 7);
  const Trace b = generate_micro(params, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].lba, b[i].lba);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
  }
}

TEST(MicroTest, DifferentSeedsDiffer) {
  const auto params = symmetric_micro(10.0, 32 * 1024, 100);
  const Trace a = generate_micro(params, 1);
  const Trace b = generate_micro(params, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].arrival != b[i].arrival) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(MicroTest, CountsMatchParams) {
  MicroParams params = symmetric_micro(10.0, 32 * 1024, 300);
  params.write.count = 100;
  const Trace trace = generate_micro(params, 3);
  const auto stats = analyze(trace);
  EXPECT_EQ(stats.read.count, 300u);
  EXPECT_EQ(stats.write.count, 100u);
}

TEST(MicroTest, SortedByArrival) {
  const Trace trace = generate_micro(symmetric_micro(10.0, 32 * 1024, 1000), 5);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].arrival, trace[i].arrival);
  }
}

TEST(MicroTest, MeanIatApproximatesTarget) {
  const Trace trace = generate_micro(symmetric_micro(25.0, 32 * 1024, 20'000), 9);
  const auto stats = analyze(trace);
  EXPECT_NEAR(stats.read.mean_iat_us, 25.0, 1.0);
  EXPECT_NEAR(stats.write.mean_iat_us, 25.0, 1.0);
  // Exponential IAT: SCV ~ 1.
  EXPECT_NEAR(stats.read.scv_iat, 1.0, 0.1);
}

TEST(MicroTest, MeanSizeApproximatesTarget) {
  const Trace trace = generate_micro(symmetric_micro(10.0, 32 * 1024, 20'000), 11);
  const auto stats = analyze(trace);
  EXPECT_NEAR(stats.read.mean_size_bytes, 32.0 * 1024, 2000.0);
}

TEST(MicroTest, SizesAlignedAndBounded) {
  MicroParams params = symmetric_micro(10.0, 64 * 1024, 5000);
  params.align_bytes = 4096;
  params.min_size_bytes = 4096;
  params.max_size_bytes = 256 * 1024;
  const Trace trace = generate_micro(params, 13);
  for (const auto& rec : trace) {
    EXPECT_EQ(rec.bytes % 4096, 0u);
    EXPECT_GE(rec.bytes, 4096u);
    EXPECT_LE(rec.bytes, 256u * 1024);
    EXPECT_EQ(rec.lba % 4096, 0u);
    EXPECT_LT(rec.lba, params.lba_space_bytes);
  }
}

}  // namespace
}  // namespace src::workload
