#include "workload/trace.hpp"

#include <gtest/gtest.h>

namespace src::workload {
namespace {

using common::IoType;
using common::microseconds;

Trace tiny_trace() {
  return Trace{
      {microseconds(0), IoType::kRead, 0, 4096},
      {microseconds(10), IoType::kWrite, 8192, 8192},
      {microseconds(20), IoType::kRead, 16384, 4096},
      {microseconds(40), IoType::kRead, 0, 12288},
  };
}

TEST(TraceTest, AnalyzeCountsAndRatio) {
  const auto stats = analyze(tiny_trace());
  EXPECT_EQ(stats.read.count, 3u);
  EXPECT_EQ(stats.write.count, 1u);
  EXPECT_DOUBLE_EQ(stats.read_ratio, 0.75);
}

TEST(TraceTest, AnalyzeMeans) {
  const auto stats = analyze(tiny_trace());
  // Read IATs: 20, 20 us.
  EXPECT_DOUBLE_EQ(stats.read.mean_iat_us, 20.0);
  EXPECT_NEAR(stats.read.mean_size_bytes, (4096 + 4096 + 12288) / 3.0, 1e-9);
}

TEST(TraceTest, FlowSpeedUsesDuration) {
  const auto stats = analyze(tiny_trace());
  // Duration 40 us; read bytes 20480 -> 512e6 B/s.
  EXPECT_NEAR(stats.read.flow_speed_bytes_per_sec, 20480 / 40e-6, 1.0);
}

TEST(TraceTest, EmptyTraceIsSafe) {
  const auto stats = analyze(Trace{});
  EXPECT_EQ(stats.read.count, 0u);
  EXPECT_EQ(stats.write.count, 0u);
  EXPECT_DOUBLE_EQ(stats.read_ratio, 0.0);
}

TEST(TraceTest, SingleTypeTrace) {
  Trace trace{{microseconds(0), IoType::kWrite, 0, 4096},
              {microseconds(5), IoType::kWrite, 4096, 4096}};
  const auto stats = analyze(trace);
  EXPECT_EQ(stats.read.count, 0u);
  EXPECT_EQ(stats.write.count, 2u);
  EXPECT_DOUBLE_EQ(stats.read_ratio, 0.0);
}

TEST(TraceTest, MergePreservesOrderAndSize) {
  Trace a{{microseconds(0), IoType::kRead, 0, 4096},
          {microseconds(20), IoType::kRead, 0, 4096}};
  Trace b{{microseconds(10), IoType::kWrite, 0, 4096}};
  const Trace merged = merge_traces(a, b);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_LE(merged[0].arrival, merged[1].arrival);
  EXPECT_LE(merged[1].arrival, merged[2].arrival);
  EXPECT_EQ(merged[1].type, IoType::kWrite);
}

TEST(TraceTest, SortByArrivalIsStable) {
  Trace trace{{microseconds(10), IoType::kRead, 1, 4096},
              {microseconds(10), IoType::kWrite, 2, 4096},
              {microseconds(0), IoType::kRead, 3, 4096}};
  sort_by_arrival(trace);
  EXPECT_EQ(trace[0].lba, 3u);
  EXPECT_EQ(trace[1].lba, 1u);  // stable: read before write at t=10
  EXPECT_EQ(trace[2].lba, 2u);
}

}  // namespace
}  // namespace src::workload
