#include "runner/runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace src::runner {
namespace {

// A task whose result depends only on (base seed, index): a tiny simulation
// driven by a derived seed. Any dependence on worker count, thread identity,
// or claim order would show up as a mismatch below.
std::uint64_t simulate_cell(std::uint64_t base, std::size_t index) {
  common::Rng rng(derive_seed(base, index));
  sim::Simulator sim;
  std::uint64_t acc = 0;
  for (int i = 0; i < 200; ++i) {
    const auto when = static_cast<common::SimTime>(rng.uniform_index(10'000));
    sim.schedule_at(when, [&acc, when] { acc = acc * 31 + static_cast<std::uint64_t>(when); });
  }
  sim.run();
  return acc + sim.executed_events();
}

TEST(RunnerTest, MapCollectsInSubmissionOrder) {
  SweepRunner pool(4);
  const auto out = pool.map(64, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(RunnerTest, IdenticalResultsForAnyWorkerCount) {
  constexpr std::uint64_t kBase = 2024;
  constexpr std::size_t kTasks = 24;
  std::vector<std::vector<std::uint64_t>> runs;
  for (const std::size_t threads : {1u, 4u, 8u}) {
    SweepRunner pool(threads);
    runs.push_back(pool.map(
        kTasks, [&](std::size_t i) { return simulate_cell(kBase, i); }));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(RunnerTest, RunExecutesEveryIndexExactlyOnce) {
  SweepRunner pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.run(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RunnerTest, ZeroCountIsANoop) {
  SweepRunner pool(4);
  int called = 0;
  pool.run(0, [&](std::size_t) { ++called; });
  EXPECT_EQ(called, 0);
}

TEST(RunnerTest, PoolIsReusableAcrossBatches) {
  SweepRunner pool(4);
  std::uint64_t totals = 0;
  for (int round = 0; round < 10; ++round) {
    const auto out = pool.map(16, [round](std::size_t i) {
      return static_cast<std::uint64_t>(round) * 100 + i;
    });
    totals = std::accumulate(out.begin(), out.end(), totals);
  }
  // 10 rounds of sum(round*100 + i, i=0..15).
  std::uint64_t expected = 0;
  for (int round = 0; round < 10; ++round) {
    expected += static_cast<std::uint64_t>(round) * 100 * 16 + 15 * 16 / 2;
  }
  EXPECT_EQ(totals, expected);
}

TEST(RunnerTest, FirstExceptionPropagatesAndPoolSurvives) {
  SweepRunner pool(4);
  EXPECT_THROW(
      pool.run(32,
               [](std::size_t i) {
                 if (i == 7) throw std::runtime_error("task 7 failed");
               }),
      std::runtime_error);
  // The pool must still be usable after a failed batch.
  const auto out = pool.map(8, [](std::size_t i) { return i + 1; });
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(out.front(), 1u);
  EXPECT_EQ(out.back(), 8u);
}

TEST(RunnerTest, SingleThreadPoolRunsSerially) {
  SweepRunner pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<std::size_t> order;
  pool.run(10, [&](std::size_t i) { order.push_back(i); });  // no data race:
  // with thread_count()==1 only the submitting thread executes tasks, and
  // the atomic cursor hands out indices in ascending order.
  EXPECT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(RunnerTest, SweepMapConvenienceMatchesPool) {
  const auto a = sweep_map(12, [](std::size_t i) { return 3 * i; }, 1);
  const auto b = sweep_map(12, [](std::size_t i) { return 3 * i; }, 4);
  EXPECT_EQ(a, b);
}

TEST(RunnerTest, DeriveSeedIsStableAndWellSpread) {
  // Pure function of (base, index).
  EXPECT_EQ(derive_seed(42, 0), derive_seed(42, 0));
  EXPECT_EQ(derive_seed(42, 9), derive_seed(42, 9));
  // Distinct across indices and bases: no collisions over a realistic grid.
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t base : {0ull, 1ull, 42ull, 0xDEADBEEFull}) {
    for (std::uint64_t index = 0; index < 4096; ++index) {
      seen.insert(derive_seed(base, index));
    }
  }
  EXPECT_EQ(seen.size(), 4u * 4096u);
  // Neighbouring indices land far apart (not a counter in disguise).
  EXPECT_GT(derive_seed(7, 1) ^ derive_seed(7, 2), 0xFFFFFFFFull);
}

}  // namespace
}  // namespace src::runner
