// The declarative scenario layer: every preset must survive a JSON round
// trip losslessly (spec equality AND byte-identical re-serialization), the
// strict parser must reject typos/bad ranges with `file:$.path.key`
// diagnostics, unit sugar must normalize to the native `_ns` /
// `_bytes_per_sec` spellings, and the component registries must fail
// lookups by listing the known names.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/build.hpp"
#include "scenario/presets.hpp"
#include "scenario/registry.hpp"
#include "scenario/serialize.hpp"

namespace src::scenario {
namespace {

/// EXPECT that evaluating `expr` throws std::runtime_error whose message
/// contains `fragment` (the `file:$.path: why` diagnostic contract).
template <typename F>
void expect_parse_error(F&& expr, const std::string& fragment) {
  try {
    expr();
    ADD_FAILURE() << "expected a parse error mentioning: " << fragment;
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find(fragment), std::string::npos)
        << "error was: " << err.what();
  }
}

TEST(SpecRoundTrip, EveryPresetIsLossless) {
  for (const std::string& name : preset_registry().names()) {
    const ScenarioSpec spec = preset_spec(name);
    const std::string text = to_json_text(spec);
    const ScenarioSpec reparsed = parse_scenario(text, name + ".json");
    EXPECT_TRUE(reparsed == spec) << name << ": spec drifted across JSON";
    EXPECT_EQ(to_json_text(reparsed), text)
        << name << ": re-serialization is not byte-identical";
  }
}

TEST(SpecRoundTrip, FaultPlanTraceWorkloadAndTpmFileSurvive) {
  // A spec exercising every optional block the presets leave empty.
  ScenarioSpec spec;
  spec.name = "kitchen-sink";
  spec.description = "every optional block populated";
  spec.driver = "ssq";
  spec.net.cc_algorithm = cc_registry().at("dctcp").algorithm;
  spec.retry.enabled = true;

  WorkloadSpec workload;
  workload.kind = "trace-file";
  workload.trace_path = "traces/replay.csv";
  workload.seed_stride = 7;
  spec.workloads.push_back(workload);

  spec.src.enabled = true;
  spec.src.tpm.source = "file";
  spec.src.tpm.path = "models/tpm.bin";

  fault::PacketDropFault drop;
  drop.node = 3;
  drop.port = -1;
  drop.start = 10 * common::kMillisecond;
  drop.end = 20 * common::kMillisecond;
  drop.probability = 0.25;
  spec.faults.packet_drops.push_back(drop);

  fault::DeviceOutageFault outage;
  outage.target = 1;
  outage.device = 0;
  outage.offline_at = 5 * common::kMillisecond;
  outage.online_at = 9 * common::kMillisecond;
  spec.faults.outages.push_back(outage);

  fault::TpmFault tpm_fault;
  tpm_fault.controller = 0;
  tpm_fault.start = 1 * common::kMillisecond;
  tpm_fault.end = 2 * common::kMillisecond;
  tpm_fault.kind = fault::TpmFaultKind::kHuge;
  spec.faults.tpm_faults.push_back(tpm_fault);

  const std::string text = to_json_text(spec);
  const ScenarioSpec reparsed = parse_scenario(text);
  EXPECT_TRUE(reparsed == spec);
  EXPECT_EQ(to_json_text(reparsed), text);
}

TEST(SpecParse, DiagnosticsCarryFileAndJsonPath) {
  // Unknown key: the misspelling is named with its full path.
  expect_parse_error(
      [] {
        parse_scenario(R"({"schema": "src-scenario-v1",
                           "workloads": [{"kind": "micro"}],
                           "topology": {"initiatorz": 2}})",
                       "vdi.json");
      },
      "vdi.json:$.topology.initiatorz: unknown key");

  // Missing schema tag.
  expect_parse_error(
      [] { parse_scenario(R"({"workloads": [{"kind": "micro"}]})"); },
      "$.schema: missing");

  // Range check with the offending value echoed back.
  expect_parse_error(
      [] {
        parse_scenario(R"({"schema": "src-scenario-v1",
                           "workloads": [{"kind": "micro"}],
                           "topology": {"initiators": 0}})");
      },
      "$.topology.initiators: must be >= 1 (got 0)");

  // A workload payload that does not match its kind is dead config.
  expect_parse_error(
      [] {
        parse_scenario(R"({"schema": "src-scenario-v1",
                           "workloads": [{"kind": "micro",
                                          "synthetic": {}}]})");
      },
      "$.workloads[0].synthetic: payload does not match kind 'micro'");

  // No workload at all.
  expect_parse_error(
      [] { parse_scenario(R"({"schema": "src-scenario-v1"})"); },
      "$.workloads: at least one workload is required");

  // Unknown registry names list the known ones.
  expect_parse_error(
      [] {
        parse_scenario(R"({"schema": "src-scenario-v1",
                           "workloads": [{"kind": "micro"}],
                           "driver": "turbo"})");
      },
      "$.driver: unknown driver 'turbo' (known: auto, fifo, ssq)");

  // Two spellings of the same duration are ambiguous.
  expect_parse_error(
      [] {
        parse_scenario(R"({"schema": "src-scenario-v1",
                           "workloads": [{"kind": "micro"}],
                           "max_time_ns": 1000, "max_time_ms": 1})");
      },
      "$.max_time_ns: give at most one of _ns/_us/_ms");

  // JSON-level syntax errors keep the file label.
  expect_parse_error([] { parse_scenario("{", "broken.json"); },
                     "broken.json: Json::parse:");
}

TEST(SpecParse, UnitSugarNormalizesToNative) {
  const ScenarioSpec spec = parse_scenario(
      R"({"schema": "src-scenario-v1",
          "name": "sugar",
          "max_time_ms": 80,
          "topology": {"link_rate_gbps": 4.0, "link_delay_us": 1.0},
          "workloads": [{"kind": "micro"}]})");
  EXPECT_EQ(spec.max_time, 80 * common::kMillisecond);
  EXPECT_EQ(spec.topology.link_rate.as_bytes_per_second(),
            common::Rate::gbps(4.0).as_bytes_per_second());
  EXPECT_EQ(spec.topology.link_delay, common::kMicrosecond);
  // The serializer always emits the native spellings.
  const std::string text = to_json_text(spec);
  EXPECT_NE(text.find("\"max_time_ns\": 80000000"), std::string::npos);
  EXPECT_NE(text.find("\"link_rate_bytes_per_sec\""), std::string::npos);
  EXPECT_EQ(text.find("_ms\""), std::string::npos);
  EXPECT_EQ(text.find("_gbps\""), std::string::npos);
}

TEST(SpecParse, SsdPresetBaseWithFieldOverride) {
  const ScenarioSpec spec = parse_scenario(
      R"({"schema": "src-scenario-v1",
          "workloads": [{"kind": "micro"}],
          "ssd": {"preset": "SSD-B", "queue_depth": 512}})");
  ssd::SsdConfig want = ssd_registry().at("SSD-B")();
  want.queue_depth = 512;
  EXPECT_TRUE(spec.ssd == want);
}

TEST(Registries, LookupFailureListsKnownNames) {
  try {
    driver_registry().at("bogus");
    FAIL() << "unknown driver accepted";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("known: auto, fifo, ssq"),
              std::string::npos)
        << err.what();
  }
  // names() is sorted (std::map) so help text and errors are deterministic.
  const std::vector<std::string> presets = preset_registry().names();
  EXPECT_TRUE(std::is_sorted(presets.begin(), presets.end()));
  EXPECT_EQ(presets.size(), 14u);
  // cc names round-trip through the reverse lookup used by the serializer.
  for (const std::string& cc : cc_registry().names()) {
    EXPECT_EQ(cc_name(cc_registry().at(cc).algorithm), cc);
  }
}

TEST(SpecRoundTrip, PerInitiatorCcSurvives) {
  ScenarioSpec spec;
  spec.name = "mixed-cc";
  spec.topology.initiators = 2;
  WorkloadSpec workload;
  workload.kind = "micro";
  spec.workloads.push_back(workload);
  spec.initiators.push_back(InitiatorSpec{"swift"});
  spec.initiators.push_back(InitiatorSpec{"cubic"});

  const std::string text = to_json_text(spec);
  EXPECT_NE(text.find("\"initiators\""), std::string::npos);
  const ScenarioSpec reparsed = parse_scenario(text, "mixed.json");
  EXPECT_TRUE(reparsed == spec) << "per-initiator cc drifted across JSON";
  EXPECT_EQ(to_json_text(reparsed), text);

  // No initiators block at all: the serializer omits the key entirely, so
  // pre-zoo manifests keep their exact bytes.
  ScenarioSpec plain;
  plain.workloads.push_back(workload);
  EXPECT_EQ(to_json_text(plain).find("\"initiators\": ["), std::string::npos);
}

TEST(SpecParse, InitiatorCcDiagnostics) {
  // Unknown controller names the offending entry and lists the known ones.
  expect_parse_error(
      [] {
        parse_scenario(R"({"schema": "src-scenario-v1",
                           "workloads": [{"kind": "micro"}],
                           "topology": {"initiators": 2},
                           "initiators": [{"cc": "bbr"}, {"cc": "swift"}]})",
                       "mix.json");
      },
      "mix.json:$.initiators[0].cc: unknown congestion controller 'bbr' "
      "(known: cubic, dcqcn, dctcp, swift)");

  // Entry count must be 1 (shared) or one per topology initiator.
  expect_parse_error(
      [] {
        parse_scenario(R"({"schema": "src-scenario-v1",
                           "workloads": [{"kind": "micro"}],
                           "topology": {"initiators": 3},
                           "initiators": [{"cc": "swift"}, {"cc": "cubic"}]})");
      },
      "$.initiators: need exactly 1 entry (shared) or one per initiator "
      "(3), got 2");

  // A non-string cc is a type error at the exact path.
  expect_parse_error(
      [] {
        parse_scenario(R"({"schema": "src-scenario-v1",
                           "workloads": [{"kind": "micro"}],
                           "initiators": [{"cc": 7}]})");
      },
      "$.initiators[0].cc");

  // Unknown keys inside an initiator entry are rejected like anywhere else.
  expect_parse_error(
      [] {
        parse_scenario(R"({"schema": "src-scenario-v1",
                           "workloads": [{"kind": "micro"}],
                           "initiators": [{"cc": "swift", "weight": 2}]})");
      },
      "$.initiators[0].weight: unknown key");
}

TEST(Build, PerInitiatorCcResolvesAndReplicates) {
  ScenarioSpec spec;
  spec.topology.initiators = 3;
  WorkloadSpec workload;
  workload.kind = "micro";
  spec.workloads.push_back(workload);

  // No initiators block: build leaves the override list empty (every host
  // runs net.cc_algorithm).
  EXPECT_TRUE(build(spec).config.initiator_cc.empty());

  // One shared entry replicates across all initiators.
  spec.initiators.push_back(InitiatorSpec{"swift"});
  const std::vector<int> shared = build(spec).config.initiator_cc;
  const int swift = cc_registry().at("swift").algorithm;
  EXPECT_EQ(shared, (std::vector<int>{swift, swift, swift}));

  // Per-initiator entries resolve independently; an empty cc falls back to
  // the spec-wide net algorithm.
  spec.initiators = {InitiatorSpec{"cubic"}, InitiatorSpec{}, InitiatorSpec{"swift"}};
  const std::vector<int> mixed = build(spec).config.initiator_cc;
  EXPECT_EQ(mixed, (std::vector<int>{cc_registry().at("cubic").algorithm,
                                     spec.net.cc_algorithm, swift}));

  // A mismatched count that bypassed the parser still fails at build time.
  spec.initiators = {InitiatorSpec{"swift"}, InitiatorSpec{"cubic"}};
  EXPECT_THROW(build(spec), std::invalid_argument);
}

TEST(Build, DriverPolicyResolvesThroughRegistry) {
  ScenarioSpec spec = preset_spec("fig7-reduced");
  // "auto" leaves the mode unset; the experiment derives it from use_src.
  EXPECT_FALSE(build(spec).config.driver_mode.has_value());
  spec.driver = "fifo";
  EXPECT_EQ(build(spec).config.driver_mode, fabric::DriverMode::kFifo);
  spec.driver = "ssq";
  EXPECT_EQ(build(spec).config.driver_mode, fabric::DriverMode::kSsq);
}

TEST(Build, SrcWithoutTpmSourceIsAnError) {
  ScenarioSpec spec = preset_spec("fig9-reduced");
  spec.src.tpm.source = "none";  // and no BuildOptions::tpm either
  EXPECT_THROW(build(spec), std::invalid_argument);
}

}  // namespace
}  // namespace src::scenario
