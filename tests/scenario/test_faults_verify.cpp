// Parse-time cross-validation of the fault plan (every bad index or range
// must fail with a `$.faults.<family>[i].<field>` diagnostic instead of a
// std::out_of_range when the injector arms mid-build) and the verify
// block's serialization contract (omitted while default, lossless once
// touched, knobs range-checked).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "scenario/serialize.hpp"

namespace src::scenario {
namespace {

/// EXPECT that evaluating `expr` throws std::runtime_error whose message
/// contains `fragment` (the `file:$.path: why` diagnostic contract).
template <typename F>
void expect_parse_error(F&& expr, const std::string& fragment) {
  try {
    expr();
    ADD_FAILURE() << "expected a parse error mentioning: " << fragment;
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find(fragment), std::string::npos)
        << "error was: " << err.what();
  }
}

/// Minimal valid scenario (default topology: 1 initiator + 2 targets with
/// 1 device each, node 0 the hub) carrying the given faults block.
std::string with_faults(const std::string& faults_json) {
  return R"({"schema": "src-scenario-v1",
             "workloads": [{"kind": "micro"}],
             "faults": )" +
         faults_json + "}";
}

TEST(FaultValidation, NodeIndexOutOfRange) {
  expect_parse_error(
      [] {
        parse_scenario(with_faults(
            R"({"packet_drops": [{"node": 9, "end_ms": 1}]})"));
      },
      "$.faults.packet_drops[0].node: node 9 out of range");
}

TEST(FaultValidation, HostPortIndexOutOfRange) {
  // Hosts have exactly one port; only the hub fans out.
  expect_parse_error(
      [] {
        parse_scenario(with_faults(
            R"({"packet_drops": [{"node": 1, "port": 2, "end_ms": 1}]})"));
      },
      "$.faults.packet_drops[0].port: port 2 out of range");
}

TEST(FaultValidation, LinkDownPortAgainstHubFanOut) {
  // The hub (node 0) has one port per host: 3 here, so port 5 is bogus.
  expect_parse_error(
      [] {
        parse_scenario(with_faults(
            R"({"link_downs": [{"node": 0, "port": 5, "up_at_ms": 1}]})"));
      },
      "$.faults.link_downs[0].port: port 5 out of range");
}

TEST(FaultValidation, OutageTargetAndDeviceOutOfRange) {
  expect_parse_error(
      [] {
        parse_scenario(with_faults(
            R"({"outages": [{"target": 7, "device": 0, "online_at_ms": 1}]})"));
      },
      "$.faults.outages[0].target: target 7 out of range");
  expect_parse_error(
      [] {
        parse_scenario(with_faults(
            R"({"outages": [{"target": 0, "device": 5, "online_at_ms": 1}]})"));
      },
      "$.faults.outages[0].device: device 5 out of range");
}

TEST(FaultValidation, DropProbabilityMustBeAUnitInterval) {
  expect_parse_error(
      [] {
        parse_scenario(with_faults(
            R"({"packet_drops": [{"node": 1, "end_ms": 1,
                                  "probability": 1.5}]})"));
      },
      "$.faults.packet_drops[0].probability: must be in [0, 1] (got 1.5)");
}

TEST(FaultValidation, InvertedWindowIsRejected) {
  expect_parse_error(
      [] {
        parse_scenario(with_faults(
            R"({"outages": [{"target": 0, "device": 0,
                             "offline_at_ms": 5, "online_at_ms": 1}]})"));
      },
      "$.faults.outages[0].offline_at_ns: fault window must have start <= end");
}

TEST(FaultValidation, SignalLossTargetOutOfRange) {
  expect_parse_error(
      [] {
        parse_scenario(with_faults(
            R"({"signal_losses": [{"target": 4, "end_ms": 1}]})"));
      },
      "$.faults.signal_losses[0].target: target 4 out of range");
}

TEST(FaultValidation, TpmFaultsNeedAnSrcRun) {
  expect_parse_error(
      [] {
        parse_scenario(with_faults(
            R"({"tpm_faults": [{"controller": 0, "end_ms": 1}]})"));
      },
      "$.faults.tpm_faults[0].controller: tpm faults need src.enabled");
}

TEST(VerifyBlock, DefaultSpecEmitsNoVerifyKey) {
  ScenarioSpec spec;
  spec.name = "plain";
  WorkloadSpec workload;
  spec.workloads.push_back(workload);
  EXPECT_EQ(spec.verify, VerifySpec{});
  EXPECT_EQ(to_json_text(spec).find("\"verify\""), std::string::npos);
}

TEST(VerifyBlock, TouchedSpecRoundTripsLosslessly) {
  ScenarioSpec spec;
  spec.name = "watched";
  WorkloadSpec workload;
  spec.workloads.push_back(workload);
  spec.verify.enabled = true;
  spec.verify.liveness = false;
  spec.verify.poll_interval = 2 * common::kMillisecond;
  spec.verify.liveness_grace = 30 * common::kMillisecond;
  spec.verify.max_violations = 8;

  const std::string text = to_json_text(spec);
  EXPECT_NE(text.find("\"verify\""), std::string::npos);
  const ScenarioSpec reparsed = parse_scenario(text, "watched.json");
  EXPECT_TRUE(reparsed == spec);
  EXPECT_EQ(to_json_text(reparsed), text);
}

TEST(VerifyBlock, KnobsAreRangeChecked) {
  expect_parse_error(
      [] {
        parse_scenario(R"({"schema": "src-scenario-v1",
                           "workloads": [{"kind": "micro"}],
                           "verify": {"poll_interval_ns": 0}})");
      },
      "$.verify.poll_interval_ns: must be > 0");
  expect_parse_error(
      [] {
        parse_scenario(R"({"schema": "src-scenario-v1",
                           "workloads": [{"kind": "micro"}],
                           "verify": {"livenezz": true}})");
      },
      "$.verify.livenezz: unknown key");
}

}  // namespace
}  // namespace src::scenario
