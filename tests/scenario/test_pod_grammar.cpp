// The declarative pod topology grammar (`topology.kind: "pod"`): strict
// schema validation with `file:$.topology.*` diagnostics, lossless round
// trips, and the byte-stability guarantee that star manifests do not grow
// the new keys.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "scenario/build.hpp"
#include "scenario/presets.hpp"
#include "scenario/serialize.hpp"

namespace src::scenario {
namespace {

/// EXPECT that evaluating `expr` throws std::runtime_error whose message
/// contains `fragment` (the `file:$.path: why` diagnostic contract).
template <typename F>
void expect_parse_error(F&& expr, const std::string& fragment) {
  try {
    expr();
    ADD_FAILURE() << "expected a parse error mentioning: " << fragment;
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find(fragment), std::string::npos)
        << "error was: " << err.what();
  }
}

/// A minimal valid pod manifest (2 pods x 2 racks x 16 hosts default) with
/// splice points for overrides: the fragments are inserted verbatim into
/// the topology.pod block / the top level, so each test states only what
/// it breaks.
std::string pod_manifest(const std::string& pod_extra = "",
                         const std::string& top_extra = "") {
  return R"({"schema": "src-scenario-v1",
             "name": "pod-fixture",
             "workloads": [{"kind": "micro"}],
             "topology": {"kind": "pod",
                          "initiators": 4, "targets": 4,
                          "pod": {"pods": 2, "racks_per_pod": 2)" +
         (pod_extra.empty() ? "" : ", " + pod_extra) + R"(}})" +
         (top_extra.empty() ? "" : ", " + top_extra) + "}";
}

TEST(PodGrammar, MinimalManifestParsesWithDefaults) {
  const ScenarioSpec spec = parse_scenario(pod_manifest(), "pod.json");
  EXPECT_EQ(spec.topology.kind, "pod");
  EXPECT_EQ(spec.topology.pod.pods, 2u);
  EXPECT_EQ(spec.topology.pod.hosts_per_rack, 16u);
  EXPECT_EQ(spec.topology.pod.partition, "rack");
  EXPECT_EQ(spec.topology.pod.stripe_width, 1u);
  EXPECT_DOUBLE_EQ(spec.topology.pod.oversubscription, 1.0);
  EXPECT_EQ(spec.lanes, 0u);
}

TEST(PodGrammar, RoundTripIsLossless) {
  const ScenarioSpec spec = parse_scenario(
      pod_manifest(R"("oversubscription": 4.0, "partition": "pod",
                      "stripe_width": 2, "spine_uplink_delay_us": 3)",
                   R"("lanes": 3)"),
      "pod.json");
  EXPECT_EQ(spec.lanes, 3u);
  const std::string text = to_json_text(spec);
  const ScenarioSpec reparsed = parse_scenario(text, "pod.json");
  EXPECT_TRUE(reparsed == spec) << "pod spec drifted across JSON";
  EXPECT_EQ(to_json_text(reparsed), text)
      << "pod re-serialization is not byte-identical";
}

TEST(PodGrammar, StarManifestsStayByteStable) {
  // The new keys are emitted only when they differ from their defaults, so
  // every pre-existing star manifest round-trips byte-identically.
  // ("kind" alone would also match the workload entries' kind key.)
  const std::string text = to_json_text(preset_spec("fig7-reduced"));
  EXPECT_EQ(text.find("\"kind\": \"star\""), std::string::npos);
  EXPECT_EQ(text.find("\"pod\""), std::string::npos);
  EXPECT_EQ(text.find("\"lanes\""), std::string::npos);
}

TEST(PodGrammar, UnknownKeysAreRejectedWithFullPath) {
  expect_parse_error(
      [] { parse_scenario(pod_manifest(R"("racks": 3)"), "pod.json"); },
      "pod.json:$.topology.pod.racks: unknown key");
  expect_parse_error(
      [] {
        parse_scenario(
            R"({"schema": "src-scenario-v1",
                "workloads": [{"kind": "micro"}],
                "topology": {"kind": "star",
                             "pod": {"pods": 2}}})",
            "star.json");
      },
      "star.json:$.topology.pod: payload does not match kind 'star'");
  expect_parse_error(
      [] {
        parse_scenario(
            R"({"schema": "src-scenario-v1",
                "workloads": [{"kind": "micro"}],
                "topology": {"kind": "mesh"}})",
            "mesh.json");
      },
      "mesh.json:$.topology.kind: unknown topology kind 'mesh'");
}

TEST(PodGrammar, RangeDiagnosticsCarryFileAndPath) {
  expect_parse_error(
      [] {
        parse_scenario(pod_manifest(R"("oversubscription": 0)"), "pod.json");
      },
      "pod.json:$.topology.pod.oversubscription: must be > 0 (got 0)");
  expect_parse_error(
      [] {
        parse_scenario(pod_manifest(R"("hosts_per_rack": 0)"), "pod.json");
      },
      "pod.json:$.topology.pod.hosts_per_rack: must be >= 1 (got 0)");
  expect_parse_error(
      [] {
        parse_scenario(pod_manifest(R"("partition": "hypercube")"),
                       "pod.json");
      },
      "pod.json:$.topology.pod.partition: unknown partition policy "
      "'hypercube'");
  // Conservative sync needs a positive cross-shard delay on every link the
  // partition cuts.
  expect_parse_error(
      [] {
        parse_scenario(pod_manifest(R"("rack_uplink_delay_ns": 0)"),
                       "pod.json");
      },
      "pod.json:$.topology.pod.rack_uplink_delay_ns: must be >= 1 under "
      "partition 'rack'");
}

TEST(PodGrammar, CrossFieldValidationAnchorsTheOffendingKey) {
  // Lane count beyond the partition's shard count: 2 pods x 2 racks under
  // "rack" yields 4 rack + 2 agg + 1 spine = 7 shards.
  expect_parse_error(
      [] { parse_scenario(pod_manifest("", R"("lanes": 8)"), "pod.json"); },
      "pod.json:$.lanes: lane count 8 exceeds the 7 shards");
  // More endpoints than the grammar provides hosts.
  expect_parse_error(
      [] {
        parse_scenario(
            pod_manifest(R"("hosts_per_rack": 1)",
                         R"("lanes": 1)"),
            "pod.json");
      },
      "pod.json:$.topology.initiators: 4 initiators + 4 targets exceed the "
      "grammar's 4 hosts");
  // Striping wider than the target set is dead config.
  expect_parse_error(
      [] {
        parse_scenario(pod_manifest(R"("stripe_width": 5)"), "pod.json");
      },
      "pod.json:$.topology.pod.stripe_width: stripe_width 5 exceeds the 4 "
      "targets");
  // Star scenarios have exactly two shards, so lanes caps at 2 there.
  expect_parse_error(
      [] {
        parse_scenario(
            R"({"schema": "src-scenario-v1",
                "workloads": [{"kind": "micro"}],
                "lanes": 3})",
            "star.json");
      },
      "star.json:$.lanes: star scenarios run at most 2 lanes");
}

TEST(PodGrammar, PodSpecsRejectStarOnlyBlocks) {
  expect_parse_error(
      [] {
        parse_scenario(pod_manifest("", R"("src": {"enabled": true})"),
                       "pod.json");
      },
      "pod.json:$.src.enabled: pod scenarios do not support SRC");
  expect_parse_error(
      [] {
        parse_scenario(pod_manifest("", R"("retry": {"enabled": true})"),
                       "pod.json");
      },
      "pod.json:$.retry.enabled: pod scenarios do not support initiator "
      "retry policies");
}

TEST(PodGrammar, BuildDispatchIsKindChecked) {
  const ScenarioSpec pod = parse_scenario(pod_manifest(), "pod.json");
  EXPECT_THROW(build(pod), std::invalid_argument);
  const ScenarioSpec star = preset_spec("fig7-reduced");
  EXPECT_THROW(build_pod(star), std::invalid_argument);
  // And the matching entry point resolves cleanly.
  const core::PodExperimentConfig config = build_pod(pod);
  EXPECT_EQ(config.grammar.pods, 2u);
  EXPECT_EQ(config.initiator_count, 4u);
  EXPECT_EQ(config.lanes, 1u);  // lanes 0 -> serial lane engine
}

}  // namespace
}  // namespace src::scenario
