#include "ml/forest.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "ml/knn.hpp"
#include "ml/linear.hpp"

namespace src::ml {
namespace {

Dataset friedman_like(std::size_t n, std::uint64_t seed) {
  // Nonlinear benchmark target over 5 features.
  Dataset data(5, 1);
  common::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    double x[5];
    for (double& v : x) v = rng.uniform();
    const double y = 10 * std::sin(M_PI * x[0] * x[1]) +
                     20 * (x[2] - 0.5) * (x[2] - 0.5) + 10 * x[3] + 5 * x[4] +
                     rng.normal(0.0, 0.5);
    data.add(x, y);
  }
  return data;
}

TEST(ForestTest, FitsNonlinearTarget) {
  const Dataset train = friedman_like(800, 1);
  const Dataset test = friedman_like(200, 2);
  ForestConfig config;
  config.n_trees = 100;
  RandomForestRegressor forest(config);
  forest.fit(train);
  EXPECT_GT(forest.score(test), 0.82);
}

TEST(ForestTest, BeatsSingleTreeOutOfSample) {
  const Dataset train = friedman_like(600, 3);
  const Dataset test = friedman_like(200, 4);
  ForestConfig fc;
  fc.n_trees = 80;
  RandomForestRegressor forest(fc);
  forest.fit(train);
  TreeConfig tc;
  DecisionTreeRegressor tree(tc);
  tree.fit(train);
  EXPECT_GT(forest.score(test), tree.score(test));
}

TEST(ForestTest, DeterministicAcrossThreadCounts) {
  const Dataset train = friedman_like(300, 5);
  ForestConfig one_thread;
  one_thread.n_trees = 16;
  one_thread.threads = 1;
  one_thread.seed = 9;
  ForestConfig many_threads = one_thread;
  many_threads.threads = 8;

  RandomForestRegressor a(one_thread), b(many_threads);
  a.fit(train);
  b.fit(train);
  const Dataset probe = friedman_like(50, 6);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.predict(probe.row(i)), b.predict(probe.row(i)));
  }
}

TEST(ForestTest, FeatureImportancesSumToOne) {
  const Dataset train = friedman_like(400, 7);
  ForestConfig config;
  config.n_trees = 30;
  RandomForestRegressor forest(config);
  forest.fit(train);
  const auto imp = forest.feature_importances();
  ASSERT_EQ(imp.size(), 5u);
  double total = 0.0;
  for (double v : imp) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ForestTest, ImportanceIdentifiesInformativeFeatures) {
  Dataset data(4, 1);
  common::Rng rng(8);
  for (int i = 0; i < 600; ++i) {
    double x[4];
    for (double& v : x) v = rng.uniform();
    data.add(x, 5.0 * x[2]);  // only feature 2 matters
  }
  ForestConfig config;
  config.n_trees = 40;
  RandomForestRegressor forest(config);
  forest.fit(data);
  const auto imp = forest.feature_importances();
  EXPECT_GT(imp[2], 0.6);
}

TEST(ForestTest, TreeCountMatchesConfig) {
  ForestConfig config;
  config.n_trees = 7;
  RandomForestRegressor forest(config);
  forest.fit(friedman_like(100, 9));
  EXPECT_EQ(forest.tree_count(), 7u);
}

TEST(ForestTest, UnfittedThrows) {
  RandomForestRegressor forest;
  const double x[5] = {0, 0, 0, 0, 0};
  EXPECT_THROW(forest.predict(std::span{x, 5}), std::runtime_error);
}

// The contiguous FlatNode inference layout must be bit-identical to the
// reference per-tree walk: same descents, same leaf values, summed in tree
// order and divided once.
TEST(ForestTest, FlatInferenceMatchesPerTreeWalkBitExactly) {
  const Dataset train = friedman_like(600, 11);
  ForestConfig config;
  config.n_trees = 25;
  config.seed = 3;
  RandomForestRegressor forest(config);
  forest.fit(train);

  common::Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    double x[5];
    for (double& v : x) v = rng.uniform() * 1.2 - 0.1;  // includes off-grid
    double sum = 0.0;
    for (std::size_t t = 0; t < forest.tree_count(); ++t) {
      sum += forest.tree(t).predict(x);
    }
    const double reference = sum / static_cast<double>(forest.tree_count());
    EXPECT_EQ(forest.predict(x), reference);
  }
}

// predict_batch is the tree-major hot path behind Algorithm 1's weight
// search and Dataset scoring: it must be bit-identical to N independent
// predict() calls — same descents, same tree-order accumulation.
TEST(ForestTest, PredictBatchMatchesPerRowPredictBitExactly) {
  const Dataset train = friedman_like(500, 41);
  ForestConfig config;
  config.n_trees = 20;
  config.seed = 4;
  RandomForestRegressor forest(config);
  forest.fit(train);

  const Dataset probe = friedman_like(64, 42);
  std::vector<double> out(probe.size());
  forest.predict_batch(probe.features(), probe.feature_count(), out);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    EXPECT_EQ(out[i], forest.predict(probe.row(i)));
  }
}

TEST(ForestTest, PredictBatchHonoursWideStride) {
  const Dataset train = friedman_like(300, 43);
  ForestConfig config;
  config.n_trees = 12;
  RandomForestRegressor forest(config);
  forest.fit(train);

  // Rows padded to stride 7 (5 live features + 2 ignored columns).
  constexpr std::size_t kStride = 7, kRows = 10;
  std::vector<double> xs(kRows * kStride, -1e9);  // poison the padding
  common::Rng rng(44);
  for (std::size_t r = 0; r < kRows; ++r) {
    for (std::size_t f = 0; f < 5; ++f) xs[r * kStride + f] = rng.uniform();
  }
  std::vector<double> out(kRows);
  forest.predict_batch(xs, kStride, out);
  for (std::size_t r = 0; r < kRows; ++r) {
    EXPECT_EQ(out[r], forest.predict(std::span{xs.data() + r * kStride, 5}));
  }
}

TEST(ForestTest, PredictBatchRejectsBadShapes) {
  const Dataset train = friedman_like(100, 45);
  RandomForestRegressor unfitted;
  std::vector<double> xs(10, 0.0);
  std::vector<double> out(2);
  EXPECT_THROW(unfitted.predict_batch(xs, 5, out), std::runtime_error);

  ForestConfig config;
  config.n_trees = 5;
  RandomForestRegressor forest(config);
  forest.fit(train);
  EXPECT_THROW(forest.predict_batch(xs, 3, out), std::invalid_argument);  // stride < dim
  std::vector<double> short_xs(7, 0.0);  // 2 rows need 1*5+5 = 10 doubles
  EXPECT_THROW(forest.predict_batch(short_xs, 5, out), std::invalid_argument);
}

TEST(ForestTest, FlatLayoutRebuiltAfterSerializeRoundTrip) {
  const Dataset train = friedman_like(400, 21);
  ForestConfig config;
  config.n_trees = 10;
  RandomForestRegressor forest(config);
  forest.fit(train);

  std::stringstream buffer;
  forest.save(buffer);
  RandomForestRegressor restored;
  restored.load(buffer);

  common::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    double x[5];
    for (double& v : x) v = rng.uniform();
    EXPECT_EQ(restored.predict(x), forest.predict(x));
  }
}

TEST(FlatNodeTest, FlattenedTreeMatchesRecursiveDescent) {
  const Dataset train = friedman_like(300, 31);
  DecisionTreeRegressor tree;
  tree.fit(train);

  std::vector<FlatNode> nodes;
  const std::uint32_t root = tree.flatten_into(nodes);
  ASSERT_LT(root, nodes.size());

  common::Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    double x[5];
    for (double& v : x) v = rng.uniform();
    std::uint32_t n = root;
    while (nodes[n].feature != FlatNode::kLeaf) {
      n = x[nodes[n].feature] <= nodes[n].value ? n + 1 : nodes[n].right;
    }
    EXPECT_EQ(nodes[n].value, tree.predict(x));
  }
}

TEST(CrossValTest, ReasonableScoreOnLearnableData) {
  const Dataset data = friedman_like(500, 10);
  ForestConfig config;
  config.n_trees = 30;
  const double cv = cross_val_r2(RandomForestRegressor(config), data, 5, 11);
  EXPECT_GT(cv, 0.8);
}

TEST(CrossValTest, RandomForestBeatsItsIngredients) {
  // The ensemble must beat both a single tree and the linear baseline on
  // nonlinear data — the property behind the paper's Table I winner. (The
  // full five-model Table I ordering is regenerated on actual TPM data by
  // bench/table1_regression_accuracy.)
  const Dataset data = friedman_like(600, 12);
  ForestConfig fc;
  fc.n_trees = 50;
  const double rf = cross_val_r2(RandomForestRegressor(fc), data, 4, 13);
  const double tree = cross_val_r2(DecisionTreeRegressor(), data, 4, 13);
  const double linear = cross_val_r2(LinearRegression(), data, 4, 13);
  EXPECT_GT(rf, tree);
  EXPECT_GT(rf, linear);
}

TEST(MultiOutputTest, IndependentTargets) {
  Dataset data(1, 2);
  common::Rng rng(14);
  for (int i = 0; i < 200; ++i) {
    const double x[1] = {rng.uniform(0, 10)};
    const double y[2] = {2.0 * x[0], -3.0 * x[0] + 1.0};
    data.add(x, y);
  }
  MultiOutputRegressor multi(LinearRegression(), 2);
  multi.fit(data);
  const double probe[1] = {4.0};
  const auto out = multi.predict(probe);
  EXPECT_NEAR(out[0], 8.0, 1e-6);
  EXPECT_NEAR(out[1], -11.0, 1e-6);
}

}  // namespace
}  // namespace src::ml
