#include "ml/knn.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace src::ml {
namespace {

TEST(KnnTest, ExactNeighborWinsWithK1) {
  Dataset data(1, 1);
  for (double v : {0.0, 1.0, 2.0, 3.0}) {
    data.add(std::span{&v, 1}, 10.0 * v);
  }
  KnnRegressor model(1);
  model.fit(data);
  const double probe[1] = {2.1};
  EXPECT_DOUBLE_EQ(model.predict(probe), 20.0);
}

TEST(KnnTest, AveragesKNeighbors) {
  Dataset data(1, 1);
  for (double v : {0.0, 1.0, 2.0}) {
    data.add(std::span{&v, 1}, v);
  }
  KnnRegressor model(3);
  model.fit(data);
  const double probe[1] = {1.0};
  EXPECT_DOUBLE_EQ(model.predict(probe), 1.0);  // (0+1+2)/3
}

TEST(KnnTest, KLargerThanDatasetClamps) {
  Dataset data(1, 1);
  const double x[1] = {1.0};
  data.add(x, 5.0);
  KnnRegressor model(10);
  model.fit(data);
  EXPECT_DOUBLE_EQ(model.predict(x), 5.0);
}

TEST(KnnTest, StandardizationBalancesScales) {
  // Feature 1 spans 1e9, feature 0 spans 1; without standardization feature
  // 0 would be irrelevant. Target depends only on feature 0.
  Dataset data(2, 1);
  common::Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const double x[2] = {rng.uniform(0, 1), rng.uniform(0, 1e9)};
    data.add(x, x[0] > 0.5 ? 1.0 : 0.0);
  }
  KnnRegressor model(5);
  model.fit(data);
  EXPECT_GT(model.score(data), 0.7);
}

TEST(KnnTest, SmoothFunctionApproximation) {
  Dataset data(1, 1);
  common::Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double x[1] = {rng.uniform(0, 6.28)};
    data.add(x, std::sin(x[0]));
  }
  KnnRegressor model(5);
  model.fit(data);
  EXPECT_GT(model.score(data), 0.98);
}

TEST(KnnTest, UnfittedPredictThrows) {
  KnnRegressor model(3);
  const double x[1] = {1.0};
  EXPECT_THROW(model.predict(std::span{x, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace src::ml
