#include "ml/metrics.hpp"

#include <gtest/gtest.h>

namespace src::ml {
namespace {

TEST(MetricsTest, PerfectPredictionIsOne) {
  const double y[] = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r2_score(y, y), 1.0);
  EXPECT_DOUBLE_EQ(mean_squared_error(y, y), 0.0);
  EXPECT_DOUBLE_EQ(mean_absolute_error(y, y), 0.0);
}

TEST(MetricsTest, MeanPredictorIsZero) {
  const double y_true[] = {1.0, 2.0, 3.0};
  const double y_pred[] = {2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(r2_score(y_true, y_pred), 0.0);
}

TEST(MetricsTest, WorseThanMeanIsNegative) {
  const double y_true[] = {1.0, 2.0, 3.0};
  const double y_pred[] = {3.0, 2.0, 1.0};
  EXPECT_LT(r2_score(y_true, y_pred), 0.0);
}

TEST(MetricsTest, ConstantTargetEdgeCases) {
  const double y_true[] = {5.0, 5.0};
  const double exact[] = {5.0, 5.0};
  const double off[] = {4.0, 6.0};
  EXPECT_DOUBLE_EQ(r2_score(y_true, exact), 1.0);
  EXPECT_DOUBLE_EQ(r2_score(y_true, off), 0.0);
}

TEST(MetricsTest, MseAndMaeValues) {
  const double y_true[] = {0.0, 0.0};
  const double y_pred[] = {3.0, -1.0};
  EXPECT_DOUBLE_EQ(mean_squared_error(y_true, y_pred), 5.0);
  EXPECT_DOUBLE_EQ(mean_absolute_error(y_true, y_pred), 2.0);
}

TEST(MetricsTest, MismatchThrows) {
  const double a[] = {1.0};
  const double b[] = {1.0, 2.0};
  EXPECT_THROW(r2_score(a, b), std::invalid_argument);
  EXPECT_THROW(r2_score(std::span<const double>{}, std::span<const double>{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace src::ml
