#include "ml/dataset.hpp"

#include <gtest/gtest.h>

namespace src::ml {
namespace {

Dataset tiny() {
  Dataset d(2, 1);
  for (double i = 0; i < 10; ++i) {
    const double x[2] = {i, 2 * i};
    d.add(x, 3 * i);
  }
  return d;
}

TEST(DatasetTest, ShapeAndAccess) {
  const Dataset d = tiny();
  EXPECT_EQ(d.size(), 10u);
  EXPECT_EQ(d.feature_count(), 2u);
  EXPECT_EQ(d.target_count(), 1u);
  EXPECT_DOUBLE_EQ(d.row(3)[0], 3.0);
  EXPECT_DOUBLE_EQ(d.row(3)[1], 6.0);
  EXPECT_DOUBLE_EQ(d.target(3), 9.0);
}

TEST(DatasetTest, MultiTarget) {
  Dataset d(1, 2);
  const double x[1] = {1.0};
  const double y[2] = {10.0, 20.0};
  d.add(x, y);
  EXPECT_DOUBLE_EQ(d.target(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(d.target(0, 1), 20.0);
}

TEST(DatasetTest, ShapeMismatchThrows) {
  Dataset d(2, 1);
  const double x[1] = {1.0};
  EXPECT_THROW(d.add(x, 1.0), std::invalid_argument);
  EXPECT_THROW(Dataset(0, 1), std::invalid_argument);
}

TEST(DatasetTest, ShuffledIndicesArePermutation) {
  const Dataset d = tiny();
  auto idx = d.shuffled_indices(5);
  std::sort(idx.begin(), idx.end());
  for (std::size_t i = 0; i < idx.size(); ++i) EXPECT_EQ(idx[i], i);
}

TEST(DatasetTest, ShuffleDeterministic) {
  const Dataset d = tiny();
  EXPECT_EQ(d.shuffled_indices(5), d.shuffled_indices(5));
  EXPECT_NE(d.shuffled_indices(5), d.shuffled_indices(6));
}

TEST(DatasetTest, SubsetSelectsRows) {
  const Dataset d = tiny();
  const std::size_t idx[] = {1, 4};
  const Dataset s = d.subset(idx);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.row(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(s.row(1)[0], 4.0);
}

TEST(DatasetTest, SplitFractions) {
  const Dataset d = tiny();
  const auto [train, test] = d.split(0.6, 3);
  EXPECT_EQ(train.size(), 6u);
  EXPECT_EQ(test.size(), 4u);
}

TEST(DatasetTest, AppendConcatenates) {
  Dataset a = tiny();
  const Dataset b = tiny();
  a.append(b);
  EXPECT_EQ(a.size(), 20u);
  Dataset wrong(3, 1);
  EXPECT_THROW(a.append(wrong), std::invalid_argument);
}

TEST(KFoldsTest, PartitionCoversAllRows) {
  const auto folds = k_folds(20, 4, 9);
  ASSERT_EQ(folds.size(), 4u);
  std::vector<std::size_t> all_test;
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.train.size() + fold.test.size(), 20u);
    all_test.insert(all_test.end(), fold.test.begin(), fold.test.end());
  }
  std::sort(all_test.begin(), all_test.end());
  ASSERT_EQ(all_test.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(all_test[i], i);
}

TEST(KFoldsTest, InvalidArgumentsThrow) {
  EXPECT_THROW(k_folds(3, 5, 1), std::invalid_argument);
  EXPECT_THROW(k_folds(10, 1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace src::ml
