#include "ml/linear.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace src::ml {
namespace {

TEST(SolverTest, SolvesKnownSystem) {
  // [2 1; 1 3] x = [5; 10] -> x = (1, 3).
  const auto x = solve_linear_system({2, 1, 1, 3}, {5, 10}, 2);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolverTest, PivotingHandlesZeroDiagonal) {
  // [0 1; 1 0] x = [2; 3] -> x = (3, 2).
  const auto x = solve_linear_system({0, 1, 1, 0}, {2, 3}, 2);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolverTest, SingularThrows) {
  EXPECT_THROW(solve_linear_system({1, 2, 2, 4}, {1, 2}, 2), std::runtime_error);
}

TEST(LinearRegressionTest, RecoversExactLinearModel) {
  Dataset data(2, 1);
  common::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const double x[2] = {rng.uniform(0, 10), rng.uniform(-5, 5)};
    data.add(x, 3.0 * x[0] - 2.0 * x[1] + 7.0);
  }
  LinearRegression model;
  model.fit(data);
  EXPECT_NEAR(model.coefficients()[0], 3.0, 1e-6);
  EXPECT_NEAR(model.coefficients()[1], -2.0, 1e-6);
  EXPECT_NEAR(model.intercept(), 7.0, 1e-6);
  EXPECT_NEAR(model.score(data), 1.0, 1e-9);
}

TEST(LinearRegressionTest, HandlesWildFeatureScales) {
  // One feature ~1e9 (flow speed), one ~1 (ratio): standardization keeps the
  // normal equations well conditioned.
  Dataset data(2, 1);
  common::Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    const double x[2] = {rng.uniform(0, 1), rng.uniform(0, 5e9)};
    data.add(x, 2.0 * x[0] + 1e-9 * x[1]);
  }
  LinearRegression model;
  model.fit(data);
  EXPECT_GT(model.score(data), 0.999);
}

TEST(LinearRegressionTest, ConstantFeatureDoesNotBreakFit) {
  Dataset data(2, 1);
  common::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double x[2] = {rng.uniform(0, 1), 42.0};
    data.add(x, 5.0 * x[0]);
  }
  LinearRegression model;
  model.fit(data);
  EXPECT_GT(model.score(data), 0.999);
}

TEST(LinearRegressionTest, PredictShapeMismatchThrows) {
  Dataset data(2, 1);
  const double x[2] = {1, 2};
  data.add(x, 3.0);
  LinearRegression model;
  model.fit(data);
  const double wrong[3] = {1, 2, 3};
  EXPECT_THROW(model.predict(wrong), std::invalid_argument);
}

TEST(LinearRegressionTest, CloneIsUnfitted) {
  LinearRegression model;
  auto clone = model.clone();
  EXPECT_EQ(clone->name(), "Linear Regression");
  const double x[1] = {1};
  EXPECT_THROW(clone->predict(std::span{x, 1}), std::invalid_argument);
}

TEST(PolynomialRegressionTest, FitsQuadraticExactly) {
  Dataset data(1, 1);
  common::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const double x[1] = {rng.uniform(-3, 3)};
    data.add(x, 2.0 * x[0] * x[0] - x[0] + 1.0);
  }
  PolynomialRegression model;
  model.fit(data);
  EXPECT_GT(model.score(data), 0.9999);
  const double probe[1] = {2.0};
  EXPECT_NEAR(model.predict(probe), 2 * 4.0 - 2.0 + 1.0, 0.01);
}

TEST(PolynomialRegressionTest, CrossTermsCaptured) {
  Dataset data(2, 1);
  common::Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const double x[2] = {rng.uniform(-2, 2), rng.uniform(-2, 2)};
    data.add(x, x[0] * x[1]);
  }
  PolynomialRegression model;
  model.fit(data);
  EXPECT_GT(model.score(data), 0.999);
}

TEST(PolynomialRegressionTest, BeatsLinearOnCurvedData) {
  Dataset data(1, 1);
  common::Rng rng(6);
  for (int i = 0; i < 300; ++i) {
    const double x[1] = {rng.uniform(0, 4)};
    data.add(x, x[0] * x[0]);
  }
  LinearRegression linear;
  PolynomialRegression poly;
  linear.fit(data);
  poly.fit(data);
  EXPECT_GT(poly.score(data), linear.score(data));
}

TEST(PolynomialRegressionTest, UnsupportedDegreeThrows) {
  Dataset data(1, 1);
  const double x[1] = {1.0};
  data.add(x, 1.0);
  PolynomialRegression cubic(3);
  EXPECT_THROW(cubic.fit(data), std::invalid_argument);
}

}  // namespace
}  // namespace src::ml
