#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/rng.hpp"
#include "core/presets.hpp"
#include "ml/forest.hpp"

namespace src::ml {
namespace {

Dataset nonlinear(std::size_t n, std::uint64_t seed) {
  Dataset data(3, 1);
  common::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double x[3] = {rng.uniform(), rng.uniform(), rng.uniform()};
    data.add(x, std::sin(6.0 * x[0]) + x[1] * x[2]);
  }
  return data;
}

TEST(SerializeTest, TreeRoundTripsExactly) {
  const Dataset data = nonlinear(300, 1);
  DecisionTreeRegressor original;
  original.fit(data);
  std::stringstream buffer;
  original.save(buffer);

  DecisionTreeRegressor restored;
  restored.load(buffer);
  EXPECT_EQ(restored.node_count(), original.node_count());
  EXPECT_EQ(restored.depth(), original.depth());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_DOUBLE_EQ(restored.predict(data.row(i)), original.predict(data.row(i)));
  }
}

TEST(SerializeTest, ForestRoundTripsExactly) {
  const Dataset data = nonlinear(300, 2);
  ForestConfig config;
  config.n_trees = 12;
  RandomForestRegressor original(config);
  original.fit(data);
  std::stringstream buffer;
  original.save(buffer);

  RandomForestRegressor restored;
  restored.load(buffer);
  EXPECT_EQ(restored.tree_count(), 12u);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_DOUBLE_EQ(restored.predict(data.row(i)), original.predict(data.row(i)));
  }
  // Importances survive the trip too.
  EXPECT_EQ(restored.feature_importances(), original.feature_importances());
}

TEST(SerializeTest, UnfittedSaveThrows) {
  DecisionTreeRegressor tree;
  std::stringstream buffer;
  EXPECT_THROW(tree.save(buffer), std::runtime_error);
  RandomForestRegressor forest;
  EXPECT_THROW(forest.save(buffer), std::runtime_error);
}

TEST(SerializeTest, CorruptInputThrows) {
  auto expect_throw = [](const char* text) {
    std::stringstream buffer(text);
    DecisionTreeRegressor tree;
    EXPECT_THROW(tree.load(buffer), std::runtime_error) << text;
  };
  expect_throw("nonsense 1 2 3");
  expect_throw("tree 99 2 1 1");             // bad version
  expect_throw("tree 1 2 1 1\n0 0.5 9 9 1.0\n0 0");  // node refs out of range
  expect_throw("tree 1 2 1 1\n");            // truncated
}

TEST(SerializeTest, TpmFileRoundTrip) {
  // Small grid for speed; file round-trip must preserve predictions.
  core::TrainingGrid grid;
  grid.traces.push_back(workload::generate_micro(
      workload::symmetric_micro(15.0, 32 * 1024, 1200), 3));
  grid.traces.push_back(workload::generate_micro(
      workload::symmetric_micro(30.0, 44 * 1024, 1200), 4));
  grid.weight_ratios = {1, 2, 4};
  core::Tpm original;
  original.fit(core::collect_training_data(ssd::ssd_a(), grid));

  const std::string path = ::testing::TempDir() + "/tpm_roundtrip.model";
  original.save_file(path);
  const core::Tpm restored = core::Tpm::load_file(path);
  EXPECT_TRUE(restored.fitted());

  workload::WorkloadFeatures ch = workload::extract_features(grid.traces[0]);
  for (double w : {1.0, 2.0, 4.0, 8.0}) {
    const auto a = original.predict(ch, w);
    const auto b = restored.predict(ch, w);
    EXPECT_DOUBLE_EQ(a.read_bytes_per_sec, b.read_bytes_per_sec);
    EXPECT_DOUBLE_EQ(a.write_bytes_per_sec, b.write_bytes_per_sec);
  }
}

TEST(SerializeTest, TpmLoadRejectsWrongShape) {
  const std::string path = ::testing::TempDir() + "/tpm_bad.model";
  {
    std::ofstream out(path);
    out << "tpm 1 3 2\n";  // wrong feature count
  }
  EXPECT_THROW(core::Tpm::load_file(path), std::runtime_error);
  EXPECT_THROW(core::Tpm::load_file("/nonexistent/x.model"), std::runtime_error);
}

}  // namespace
}  // namespace src::ml
