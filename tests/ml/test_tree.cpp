#include "ml/tree.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace src::ml {
namespace {

TEST(TreeTest, FitsStepFunctionExactly) {
  Dataset data(1, 1);
  common::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const double x[1] = {rng.uniform(0, 10)};
    data.add(x, x[0] < 5.0 ? 1.0 : 9.0);
  }
  DecisionTreeRegressor tree;
  tree.fit(data);
  const double lo[1] = {2.0}, hi[1] = {8.0};
  EXPECT_DOUBLE_EQ(tree.predict(lo), 1.0);
  EXPECT_DOUBLE_EQ(tree.predict(hi), 9.0);
}

TEST(TreeTest, ConstantTargetIsSingleLeaf) {
  Dataset data(1, 1);
  common::Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const double x[1] = {rng.uniform(0, 1)};
    data.add(x, 7.0);
  }
  DecisionTreeRegressor tree;
  tree.fit(data);
  EXPECT_EQ(tree.node_count(), 1u);
  const double probe[1] = {0.3};
  EXPECT_DOUBLE_EQ(tree.predict(probe), 7.0);
}

TEST(TreeTest, MaxDepthRespected) {
  Dataset data(1, 1);
  common::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double x[1] = {rng.uniform(0, 1)};
    data.add(x, rng.uniform(0, 1));  // noise forces deep splits
  }
  TreeConfig config;
  config.max_depth = 3;
  DecisionTreeRegressor tree(config);
  tree.fit(data);
  EXPECT_LE(tree.depth(), 3u);
  EXPECT_LE(tree.node_count(), 15u);  // 2^(3+1) - 1
}

TEST(TreeTest, MinSamplesLeafRespected) {
  Dataset data(1, 1);
  for (double v = 0; v < 8; ++v) data.add(std::span{&v, 1}, v);
  TreeConfig config;
  config.min_samples_leaf = 4;
  DecisionTreeRegressor tree(config);
  tree.fit(data);
  // Only one split (4|4) is possible.
  EXPECT_LE(tree.node_count(), 3u);
}

TEST(TreeTest, ImportanceConcentratesOnInformativeFeature) {
  Dataset data(3, 1);
  common::Rng rng(4);
  for (int i = 0; i < 400; ++i) {
    const double x[3] = {rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1)};
    data.add(x, x[1] > 0.5 ? 10.0 : 0.0);
  }
  DecisionTreeRegressor tree;
  tree.fit(data);
  const auto& imp = tree.impurity_decrease();
  EXPECT_GT(imp[1], imp[0]);
  EXPECT_GT(imp[1], imp[2]);
}

TEST(TreeTest, GeneralizesPiecewiseFunction) {
  Dataset train(1, 1), test(1, 1);
  common::Rng rng(5);
  auto fn = [](double x) { return x < 3 ? 1.0 : (x < 7 ? 5.0 : 2.0); };
  for (int i = 0; i < 500; ++i) {
    const double x[1] = {rng.uniform(0, 10)};
    train.add(x, fn(x[0]));
  }
  for (int i = 0; i < 100; ++i) {
    const double x[1] = {rng.uniform(0, 10)};
    test.add(x, fn(x[0]));
  }
  DecisionTreeRegressor tree;
  tree.fit(train);
  EXPECT_GT(tree.score(test), 0.95);
}

TEST(TreeTest, EmptyFitThrows) {
  Dataset data(1, 1);
  DecisionTreeRegressor tree;
  EXPECT_THROW(tree.fit(data), std::invalid_argument);
}

TEST(TreeTest, UnfittedPredictThrows) {
  DecisionTreeRegressor tree;
  const double x[1] = {0.0};
  EXPECT_THROW(tree.predict(std::span{x, 1}), std::runtime_error);
}

TEST(TreeTest, DuplicateFeatureValuesNoBoundary) {
  // All x identical: no split boundary exists; must stay a leaf.
  Dataset data(1, 1);
  for (double v : {5.0, 5.0, 5.0, 5.0}) {
    data.add(std::span{&v, 1}, v);
  }
  DecisionTreeRegressor tree;
  tree.fit(data);
  EXPECT_EQ(tree.node_count(), 1u);
}

}  // namespace
}  // namespace src::ml
