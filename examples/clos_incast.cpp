// Drive the paper's full-scale testbed topology: a 4-pod Clos fabric with
// 256 hosts (16 per ToR, 4 ToRs and 2 leaves per pod, 40 Gbps links,
// 1 us delay). Half the hosts act as initiators, half as NVMe-oF targets;
// a cross-pod in-cast develops and DCQCN + PFC keep it lossless.
//
// Usage: clos_incast [targets_per_initiator]
#include <cstdio>
#include <cstdlib>

#include "fabric/initiator.hpp"
#include "fabric/target.hpp"
#include "net/topology.hpp"
#include "workload/micro.hpp"

int main(int argc, char** argv) {
  using namespace src;
  const std::size_t fan_in = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;

  std::printf("Building the paper's Clos testbed (4 pods x [2 leaves + 4 ToRs"
              " + 64 hosts])...\n");
  sim::Simulator sim;
  net::Network network(sim, net::NetConfig{});
  const net::ClosTopology topo = net::make_clos(network);
  std::printf("  %zu hosts, %zu ToR and %zu leaf switches\n\n",
              topo.hosts.size(), topo.tors.size(), topo.leaves.size());

  // First half of the hosts are initiators, second half targets (paper's
  // 128/128 split). To keep this demo quick, only the first 8 initiators
  // actively submit I/O, each to `fan_in` targets in other pods.
  fabric::FabricContext context;
  std::vector<std::unique_ptr<fabric::Initiator>> initiators;
  std::vector<std::unique_ptr<fabric::Target>> targets;
  const std::size_t half = topo.hosts.size() / 2;
  for (std::size_t i = 0; i < 8; ++i) {
    initiators.push_back(std::make_unique<fabric::Initiator>(
        network, topo.hosts[i * 16], context));  // spread across ToRs
  }
  for (std::size_t t = 0; t < 8 * fan_in; ++t) {
    fabric::TargetConfig config;
    config.seed = 1 + t;
    targets.push_back(std::make_unique<fabric::Target>(
        network, topo.hosts[half + t * 3], context, config));
  }

  std::printf("Replaying a read-heavy workload from 8 initiators across %zu"
              " targets...\n", targets.size());
  for (std::size_t i = 0; i < initiators.size(); ++i) {
    workload::MicroParams params = workload::symmetric_micro(12.0, 44.0 * 1024, 3000);
    params.write.mean_iat_us = 48.0;
    params.write.count = 750;
    const auto trace = workload::generate_micro(params, 100 + i);
    initiators[i]->run_trace(
        trace, [&, i](const workload::TraceRecord&, std::size_t index) {
          return targets[(i * fan_in + index % fan_in) % targets.size()]->node_id();
        });
  }
  sim.run_until(120 * common::kMillisecond);

  std::uint64_t read_bytes = 0, reads_done = 0, writes_done = 0;
  for (const auto& initiator : initiators) {
    read_bytes += initiator->stats().read_bytes_received;
    reads_done += initiator->stats().reads_completed;
    writes_done += initiator->stats().writes_completed;
  }
  std::uint64_t signals = 0, pauses = 0;
  for (const auto& target : targets) {
    signals += target->stats().congestion_signals;
    pauses += target->stats().pauses_received;
  }
  std::uint64_t forwarded = 0;
  for (const net::NodeId s : topo.tors) forwarded += network.switch_at(s).stats().packets_forwarded;
  for (const net::NodeId s : topo.leaves) forwarded += network.switch_at(s).stats().packets_forwarded;

  std::printf("\nafter %.0f ms of simulated time:\n", common::to_milliseconds(sim.now()));
  std::printf("  reads completed:      %llu (%.2f Gbps of read data delivered)\n",
              static_cast<unsigned long long>(reads_done),
              static_cast<double>(read_bytes) * 8.0 / common::to_seconds(sim.now()) / 1e9);
  std::printf("  writes completed:     %llu\n", static_cast<unsigned long long>(writes_done));
  std::printf("  packets forwarded:    %llu\n", static_cast<unsigned long long>(forwarded));
  std::printf("  congestion signals:   %llu (of which %llu PFC pauses)\n",
              static_cast<unsigned long long>(signals),
              static_cast<unsigned long long>(pauses));
  std::printf("  simulator events run: %llu\n",
              static_cast<unsigned long long>(sim.executed_events()));
  return 0;
}
