// Quickstart: the whole SRC pipeline in ~40 lines of user code.
//
//   1. Train a throughput prediction model for an SSD.
//   2. Run the paper's VDI experiment under plain DCQCN.
//   3. Run it again with SRC active on the storage nodes.
//   4. Compare read/write/aggregated throughput.
//
// Build & run:  ./build/examples/quickstart
//
// The experiments are the "fig7" / "fig9" scenario presets — the same specs
// `srcctl scenarios` dumps as JSON and `srcctl run <file>` replays.
#include <cstdio>

#include "core/presets.hpp"
#include "scenario/build.hpp"
#include "scenario/presets.hpp"

int main() {
  using namespace src;

  std::printf("SRC quickstart — storage-side rate control vs DCQCN-only\n\n");

  // 1. Train the TPM (Random Forest over micro-trace grid; ~3 s).
  std::printf("[1/3] training throughput prediction model for SSD-A...\n");
  const core::Tpm tpm = core::train_default_tpm(ssd::ssd_a());

  // 2. Baseline: DCQCN-only (FIFO NVMe driver on the targets).
  std::printf("[2/3] running DCQCN-only baseline...\n");
  const core::ExperimentResult baseline =
      scenario::run(scenario::preset_spec("fig7"));

  // 3. DCQCN-SRC: separate submission queues + dynamic weight adjustment.
  std::printf("[3/3] running DCQCN-SRC...\n\n");
  scenario::BuildOptions options;
  options.tpm = &tpm;
  const core::ExperimentResult with_src =
      scenario::run(scenario::preset_spec("fig9"), options);

  auto report = [](const char* name, const core::ExperimentResult& r) {
    std::printf("%-12s read %5.2f Gbps | write %5.2f Gbps | aggregate %5.2f Gbps"
                " | congestion signals %llu\n",
                name, r.read_rate.as_gbps(), r.write_rate.as_gbps(),
                r.aggregate_rate().as_gbps(),
                static_cast<unsigned long long>(r.pause_timeline.total()));
  };
  report("DCQCN-only:", baseline);
  report("DCQCN-SRC:", with_src);

  const double gain = (with_src.aggregate_rate().as_bytes_per_second() /
                           baseline.aggregate_rate().as_bytes_per_second() -
                       1.0) * 100.0;
  std::printf("\nSRC applied %zu weight adjustments and improved aggregate "
              "throughput by %+.0f%%.\n",
              with_src.adjustments.size(), gain);
  return 0;
}
