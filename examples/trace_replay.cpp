// Replay a CSV block trace against a simulated SSD and report what the
// device made of it. Without arguments a sample VDI-like trace is
// generated, written next to the binary, and replayed — so the example is
// self-contained; point it at your own trace to study real workloads.
//
// Usage: trace_replay [trace.csv] [SSD-A|SSD-B|SSD-C] [weight_ratio]
// CSV format: timestamp_us,op(R/W),lba,bytes   (header/# comments ok)
#include <cstdio>
#include <cstdlib>

#include "core/standalone.hpp"
#include "workload/mmpp.hpp"
#include "workload/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace src;

  std::string path = argc > 1 ? argv[1] : "";
  const std::string ssd_name = argc > 2 ? argv[2] : "SSD-A";
  const auto weight = argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 1u;

  if (path.empty()) {
    path = "sample_trace.csv";
    std::printf("no trace given — generating a sample VDI-like trace at %s\n",
                path.c_str());
    workload::write_csv_trace_file(
        path, workload::generate_synthetic(workload::fujitsu_vdi_like(3000), 7));
  }

  const workload::Trace trace = workload::read_csv_trace_file(path);
  const auto stats = workload::analyze(trace);
  std::printf("\ntrace: %zu requests over %.1f ms\n", trace.size(),
              common::to_milliseconds(stats.duration));
  std::printf("  reads:  %zu, mean %.1f KB every %.1f us (size SCV %.2f)\n",
              stats.read.count, stats.read.mean_size_bytes / 1024.0,
              stats.read.mean_iat_us, stats.read.scv_size);
  std::printf("  writes: %zu, mean %.1f KB every %.1f us (size SCV %.2f)\n",
              stats.write.count, stats.write.mean_size_bytes / 1024.0,
              stats.write.mean_iat_us, stats.write.scv_size);

  core::StandaloneOptions options;
  options.weight_ratio = weight;
  options.horizon = core::arrival_horizon(trace);
  const auto result =
      core::run_standalone(ssd::config_by_name(ssd_name), trace, options);

  std::printf("\nreplayed on %s with SSQ weight ratio %u:1 —\n",
              ssd_name.c_str(), weight);
  std::printf("  sustained read  throughput: %.2f Gbps\n",
              result.read_rate.as_gbps());
  std::printf("  sustained write throughput: %.2f Gbps\n",
              result.write_rate.as_gbps());
  std::printf("  mean read latency:  %.0f us\n", result.mean_read_latency_us);
  std::printf("  mean write latency: %.0f us\n", result.mean_write_latency_us);
  return 0;
}
