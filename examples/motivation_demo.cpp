// The paper's Fig. 2 motivating example as an analytic demo: an SSD that
// can serve 6 reads + 3 writes per time unit behind a fabric that ships 6
// read responses per unit, under no congestion / DCQCN / SRC.
//
// Build & run:  ./build/examples/motivation_demo [congestion_factor]
#include <cstdio>
#include <cstdlib>

#include "core/motivation.hpp"

int main(int argc, char** argv) {
  using namespace src::core;

  MotivationParams params;  // the paper's numbers
  if (argc > 1) params.congestion_factor = std::atof(argv[1]);

  std::printf("Fig. 2 motivation demo (SSD: %.0f reads + %.0f writes per unit,\n"
              "fabric: %.0f per unit, congestion cuts fabric rate to %.0f%%)\n\n",
              params.ssd_read_rate, params.ssd_write_rate, params.fabric_rate,
              params.congestion_factor * 100.0);

  auto show = [](const char* name, MotivationThroughput t) {
    std::printf("%-16s reads %4.1f | writes %4.1f | overall %4.1f per unit\n",
                name, t.read, t.write, t.aggregate());
  };
  show("no congestion:", no_congestion(params));
  show("DCQCN:", under_dcqcn(params));
  show("SRC:", under_src(params));

  std::printf("\nDCQCN throttles the target's sending rate and strands read\n"
              "data in the TXQ while the SSD keeps burning bandwidth on\n"
              "reads; SRC throttles reads *at the SSD* and hands the freed\n"
              "capacity to writes, restoring the overall throughput.\n");
  return 0;
}
