// Step-by-step walkthrough of the paper's Algorithm 1
// (PredictWeightRatio): train a TPM, pick a workload, and watch the search
// visit weight ratios until the predicted read throughput converges —
// printing exactly the quantities the paper's listing manipulates
// (TPUT_R, dis, min_dis, w*).
//
// Usage: alg1_walkthrough [demand_fraction_of_R0]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/presets.hpp"
#include "core/src_controller.hpp"

int main(int argc, char** argv) {
  using namespace src;
  const double fraction = argc > 1 ? std::atof(argv[1]) : 0.5;

  std::printf("Algorithm 1 walkthrough (PredictWeightRatio)\n\n");
  std::printf("[1/3] training TPM for SSD-A...\n");
  const core::Tpm tpm = core::train_default_tpm(ssd::ssd_a());

  std::printf("[2/3] workload: heavy mixed stream (12 us IAT, 36 KB)\n");
  workload::MicroParams params = workload::symmetric_micro(12.0, 36.0 * 1024, 6000);
  params.write.mean_iat_us = 24.0;
  params.write.count = 3000;
  const auto trace = workload::generate_micro(params, 123);
  const auto ch = workload::extract_features(trace);

  const double r0 = tpm.predict(ch, 1.0).read_bytes_per_sec;
  const double demanded = fraction * r0;
  std::printf("      predicted read throughput at w=1 (R0): %.2f Gbps\n",
              r0 * 8.0 / 1e9);
  std::printf("      demanded data sending rate r: %.2f Gbps (%.0f%% of R0)\n\n",
              demanded * 8.0 / 1e9, fraction * 100.0);

  std::printf("[3/3] search (tau = 10%%):\n");
  common::TextTable table({"w", "TPUT_R Gbps", "TPUT_W Gbps", "dis Gbps",
                           "min_dis so far", "note"});
  constexpr double kTau = 0.10;
  double min_dis = -1.0;
  std::uint32_t w_star = 1;
  double prev = 0.0;
  for (std::uint32_t w = 1; w <= 64; ++w) {
    const auto prediction = tpm.predict(ch, static_cast<double>(w));
    const double dis = std::abs(prediction.read_bytes_per_sec - demanded);
    std::string note;
    if (w == 1 && prediction.read_bytes_per_sec < demanded) {
      note = "TPUT_R < r: no throttling needed, return w=1";
    }
    if (min_dis < 0.0 || dis < min_dis) {
      min_dis = dis;
      w_star = w;
      if (w > 1) note = "new w*";
    }
    table.add_row({std::to_string(w),
                   common::fmt(prediction.read_bytes_per_sec * 8 / 1e9),
                   common::fmt(prediction.write_bytes_per_sec * 8 / 1e9),
                   common::fmt(dis * 8 / 1e9), common::fmt(min_dis * 8 / 1e9),
                   note});
    if (w == 1 && prediction.read_bytes_per_sec < demanded) break;
    if (w > 1 && prev > 0.0 &&
        std::abs(prev - prediction.read_bytes_per_sec) / prev < kTau) {
      table.add_row({"", "", "", "", "", "converged (relative change < tau)"});
      break;
    }
    prev = prediction.read_bytes_per_sec;
  }
  table.print(std::cout);

  core::WorkloadMonitor monitor;
  core::SrcController controller(tpm, monitor);
  std::printf("\ncontroller verdict: w* = %u (matches the walkthrough: %u)\n",
              controller.predict_weight_ratio(demanded, ch), w_star);
  return 0;
}
