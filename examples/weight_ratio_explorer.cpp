// Explore how the SSQ write:read weight ratio reshapes an SSD's read and
// write throughput for a workload you describe on the command line — the
// interactive version of the paper's Fig. 5.
//
// Usage: weight_ratio_explorer [SSD-A|SSD-B|SSD-C] [iat_us] [size_kb]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/standalone.hpp"
#include "workload/micro.hpp"

int main(int argc, char** argv) {
  using namespace src;

  const std::string ssd_name = argc > 1 ? argv[1] : "SSD-A";
  const double iat_us = argc > 2 ? std::atof(argv[2]) : 15.0;
  const double size_kb = argc > 3 ? std::atof(argv[3]) : 32.0;

  const ssd::SsdConfig config = ssd::config_by_name(ssd_name);
  std::printf("weight-ratio sweep on %s — %.0f us inter-arrival, %.0f KB "
              "requests (read and write streams alike)\n\n",
              config.name.c_str(), iat_us, size_kb);

  const auto trace = workload::generate_micro(
      workload::symmetric_micro(iat_us, size_kb * 1024, 6000), 7);

  common::TextTable table({"w (write:read)", "read Gbps", "write Gbps",
                           "aggregate", "read share"});
  for (const std::uint32_t w : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u}) {
    core::StandaloneOptions options;
    options.weight_ratio = w;
    options.horizon = core::arrival_horizon(trace);
    const auto result = core::run_standalone(config, trace, options);
    const double read = result.read_rate.as_gbps();
    const double write = result.write_rate.as_gbps();
    table.add_row({std::to_string(w) + ":1", common::fmt(read),
                   common::fmt(write), common::fmt(read + write),
                   common::fmt(read / (read + write) * 100.0, 0) + "%"});
  }
  table.print(std::cout);

  std::printf("\nTip: rerun with a long inter-arrival time (e.g. 400) to see\n"
              "the weight ratio lose its grip on a light workload.\n");
  return 0;
}
