// Train the throughput prediction model end to end and inspect it: data
// collection on the standalone rig, held-out accuracy, and Breiman feature
// importances (the paper reports the read/write arrival flow speed as the
// most important feature, weight 0.39).
//
// Usage: tpm_training [SSD-A|SSD-B|SSD-C]
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/presets.hpp"

int main(int argc, char** argv) {
  using namespace src;

  const std::string ssd_name = argc > 1 ? argv[1] : "SSD-A";
  const ssd::SsdConfig config = ssd::config_by_name(ssd_name);

  std::printf("TPM training walkthrough for %s\n\n", config.name.c_str());

  std::printf("[1/3] collecting labelled samples on the standalone rig...\n");
  const auto data =
      core::collect_training_data(config, core::default_training_grid());
  std::printf("      %zu samples, %zu features, 2 targets "
              "(read/write throughput)\n\n",
              data.size(), data.feature_count());

  std::printf("[2/3] fitting the Random Forest and scoring held-out data...\n");
  const auto [train, test] = data.split(0.6, 42);
  core::Tpm tpm;
  tpm.fit(train);
  const auto [read_r2, write_r2] = tpm.score(test);
  std::printf("      held-out R^2: read %.3f, write %.3f\n\n", read_r2, write_r2);

  std::printf("[3/3] Breiman feature importances (read-throughput model):\n");
  const auto importances = tpm.feature_importances();
  auto names = workload::WorkloadFeatures::names();
  common::TextTable table({"feature", "importance"});
  for (std::size_t i = 0; i < importances.size(); ++i) {
    const std::string name =
        i < names.size() ? names[i] : std::string("weight_ratio_w");
    table.add_row({name, common::fmt(importances[i], 3)});
  }
  table.print(std::cout);

  double flow_total = 0.0;
  for (std::size_t i = 0; i < importances.size() && i < names.size(); ++i) {
    if (names[i].find("flow_speed") != std::string::npos) flow_total += importances[i];
  }
  std::printf("\narrival flow speed features carry %.2f of the importance\n"
              "(the paper reports 0.39 for its grid).\n", flow_total);
  return 0;
}
