// srclint — determinism & invariant static analysis for this repo.
//
// Two-phase analyzer: phase 1 lexes every file and builds a lightweight
// cross-TU symbol index (unordered-container names, static-storage
// objects with mutability, float-typed members, functions that call the
// scheduling API); phase 2 runs the rule families R1-R9 over the token
// streams and the index.
//
// Two modes:
//   srclint --root <repo>          lint the whole tree (src/ bench/ tests/
//                                  tools/ examples/, minus gitignored paths
//                                  and tests/lint/fixtures/)
//   srclint [options] <file>...    lint explicit files (rule dir-scoping is
//                                  disabled; used by the lint self-tests)
//
// Options:
//   --rules R1,R2,...        run only the listed rules (default: all)
//   --no-header-check        skip R5 (header self-containment)
//   --cxx <compiler>         compiler for R5 TU checks (default: $CXX or c++)
//   --jobs <n>               parallel R5 compile jobs (default: hardware)
//   --format text|json|sarif findings format on stdout (default: text)
//   --baseline <file>        filter findings listed in the baseline file;
//                            only new findings fail the run
//   --write-baseline <file>  write the current findings as a baseline and
//                            exit 0 (the burn-down workflow's first step)
//   --sarif-out <file>       additionally write SARIF 2.1.0 to <file>,
//                            independent of --format (for CI upload)
//   --shared-inventory <f>   write the full R8 shared-state inventory
//                            (src-shared-state-v1 JSON) to <f>
//   --fail-shared-under <p>  (repeatable) fail the run when any *mutable*
//                            static-storage object lives under path prefix
//                            <p>, annotated or not. Annotations justify
//                            determinism, not thread-safety, so layers the
//                            sharded lane engine executes concurrently
//                            (src/sim, src/net) gate on an empty inventory.
//   --list                   print the files that would be linted, exit 0
//
// Exit codes: 0 clean, 1 findings reported, 2 usage or I/O error — so CI
// can distinguish "violations" from "the linter itself broke".
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "header_check.hpp"
#include "index.hpp"
#include "lexer.hpp"
#include "report.hpp"
#include "rules.hpp"
#include "walker.hpp"

namespace {
namespace fs = std::filesystem;
using namespace srclint;

constexpr int kExitClean = 0;
constexpr int kExitFindings = 1;
constexpr int kExitError = 2;

int usage_error(const std::string& message) {
  std::cerr << "srclint: " << message << "\n"
            << "usage: srclint --root <dir> [--rules R1,..] [--no-header-check]"
               " [--cxx <compiler>] [--jobs <n>]\n"
               "               [--format text|json|sarif] [--baseline <file>]"
               " [--write-baseline <file>]\n"
               "               [--sarif-out <file>] [--shared-inventory <file>]"
               " [--fail-shared-under <prefix>]... [--list]\n"
            << "       srclint [options] <file>...\n";
  return kExitError;
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return bool(out);
}

struct Options {
  fs::path root;
  bool have_root = false;
  bool header_check = true;
  bool list_only = false;
  std::string cxx;
  std::size_t jobs = 0;
  RuleSet rules;
  OutputFormat format = OutputFormat::kText;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string sarif_out_path;
  std::string inventory_path;
  std::vector<std::string> fail_shared_under;
  std::vector<std::string> files;
};

bool parse_rules(const std::string& spec, RuleSet& out) {
  out = RuleSet::none();
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item == "R1") out.r1 = true;
    else if (item == "R2") out.r2 = true;
    else if (item == "R3") out.r3 = true;
    else if (item == "R4") out.r4 = true;
    else if (item == "R5") out.r5 = true;
    else if (item == "R6") out.r6 = true;
    else if (item == "R7") out.r7 = true;
    else if (item == "R8") out.r8 = true;
    else if (item == "R9") out.r9 = true;
    else return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (const char* env_cxx = std::getenv("CXX")) opt.cxx = env_cxx;
  if (opt.cxx.empty()) opt.cxx = "c++";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](std::string& out) {
      if (i + 1 >= argc) return false;
      out = argv[++i];
      return true;
    };
    if (arg == "--root") {
      std::string value;
      if (!next_value(value)) return usage_error("--root requires a value");
      opt.root = value;
      opt.have_root = true;
    } else if (arg == "--rules") {
      std::string value;
      if (!next_value(value)) return usage_error("--rules requires a value");
      if (!parse_rules(value, opt.rules)) {
        return usage_error("unknown rule in --rules '" + value + "'");
      }
    } else if (arg == "--cxx") {
      if (!next_value(opt.cxx)) return usage_error("--cxx requires a value");
    } else if (arg == "--jobs") {
      std::string value;
      if (!next_value(value)) return usage_error("--jobs requires a value");
      opt.jobs = static_cast<std::size_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (arg == "--format") {
      std::string value;
      if (!next_value(value)) return usage_error("--format requires a value");
      if (!parse_format(value, opt.format)) {
        return usage_error("unknown format '" + value +
                           "' (expected text, json, or sarif)");
      }
    } else if (arg == "--baseline") {
      if (!next_value(opt.baseline_path)) {
        return usage_error("--baseline requires a value");
      }
    } else if (arg == "--write-baseline") {
      if (!next_value(opt.write_baseline_path)) {
        return usage_error("--write-baseline requires a value");
      }
    } else if (arg == "--sarif-out") {
      if (!next_value(opt.sarif_out_path)) {
        return usage_error("--sarif-out requires a value");
      }
    } else if (arg == "--shared-inventory") {
      if (!next_value(opt.inventory_path)) {
        return usage_error("--shared-inventory requires a value");
      }
    } else if (arg == "--fail-shared-under") {
      std::string value;
      if (!next_value(value)) {
        return usage_error("--fail-shared-under requires a value");
      }
      opt.fail_shared_under.push_back(std::move(value));
    } else if (arg == "--no-header-check") {
      opt.header_check = false;
    } else if (arg == "--list") {
      opt.list_only = true;
    } else if (arg.starts_with("--")) {
      return usage_error("unknown option '" + arg + "'");
    } else {
      opt.files.push_back(arg);
    }
  }

  if (!opt.have_root && opt.files.empty()) {
    return usage_error("nothing to lint: pass --root <dir> or files");
  }
  if (opt.have_root && !opt.files.empty()) {
    return usage_error("--root and explicit files are mutually exclusive");
  }

  // Resolve the worklist: (absolute path, reporting path) pairs.
  struct Work {
    fs::path absolute;
    std::string report;
  };
  std::vector<Work> work;
  const bool tree_mode = opt.have_root;
  if (tree_mode) {
    std::error_code ec;
    const fs::path root = fs::canonical(opt.root, ec);
    if (ec || !fs::is_directory(root)) {
      return usage_error("--root '" + opt.root.string() +
                         "' is not a directory");
    }
    opt.root = root;
    const GitIgnore ignore = GitIgnore::load(root);
    for (const std::string& rel : discover(root, ignore)) {
      work.push_back({root / rel, rel});
    }
  } else {
    for (const std::string& file : opt.files) {
      work.push_back({fs::path(file), file});
    }
  }

  if (opt.list_only) {
    for (const Work& w : work) std::cout << w.report << "\n";
    return kExitClean;
  }

  // Phase 1: lex everything up front and build the cross-TU symbol index.
  // R2's container-name collection and R7/R8/R9's symbol sets are global:
  // members are declared in headers, used in .cpp files.
  std::vector<LexedFile> lexed;
  lexed.reserve(work.size());
  for (const Work& w : work) {
    std::string text;
    if (!read_file(w.absolute, text)) {
      std::cerr << "srclint: cannot read '" << w.report << "'\n";
      return kExitError;
    }
    lexed.push_back(lex(w.report, text));
  }
  const std::unordered_set<std::string> unordered_names =
      collect_unordered_names(lexed);
  const SymbolIndex index = build_index(lexed, tree_mode);

  // Phase 2: token and semantic rules.
  std::vector<Finding> findings;
  for (const LexedFile& file : lexed) {
    RuleScope scope;
    if (tree_mode) {
      scope.r2 = in_r2_scope_dir(file.path);
      scope.r7 = in_r2_scope_dir(file.path);
      scope.r8 = in_r8_scope_dir(file.path);
      scope.r9 = in_r9_scope_dir(file.path);
    }
    run_token_rules(file, opt.rules, scope, unordered_names, index, findings);
  }
  if (opt.rules.r8) {
    run_shared_state_rule(index, tree_mode, findings);
  }

  // R5: headers must compile standalone.
  if (opt.rules.r5 && opt.header_check) {
    std::vector<HeaderToCheck> headers;
    for (std::size_t idx = 0; idx < work.size(); ++idx) {
      const Work& w = work[idx];
      if (w.absolute.extension() != ".hpp" && w.absolute.extension() != ".h") {
        continue;
      }
      // Tree mode checks the public (src/) headers only.
      if (tree_mode && !w.report.starts_with("src/")) continue;
      if (lexed[idx].suppressions.file_tags.contains("header")) continue;
      std::error_code ec;
      const fs::path abs = fs::absolute(w.absolute, ec);
      if (ec) return usage_error("cannot resolve '" + w.report + "'");
      headers.push_back({abs, w.report});
    }
    HeaderCheckConfig config;
    config.compiler = opt.cxx;
    config.jobs = opt.jobs;
    if (tree_mode) {
      config.include_dirs.push_back((opt.root / "src").generic_string());
    }
    for (const HeaderToCheck& h : headers) {
      config.include_dirs.push_back(h.absolute.parent_path().generic_string());
    }
    std::sort(config.include_dirs.begin(), config.include_dirs.end());
    config.include_dirs.erase(
        std::unique(config.include_dirs.begin(), config.include_dirs.end()),
        config.include_dirs.end());
    if (!check_headers(headers, config, findings)) {
      std::cerr << "srclint: header check could not run (compiler '"
                << opt.cxx << "' unavailable?)\n";
      return kExitError;
    }
  }

  // Deterministic report order: findings grouped per file in source order.
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.path != b.path) return a.path < b.path;
                     return a.line < b.line;
                   });

  // Baseline workflow: --write-baseline snapshots the current findings;
  // --baseline filters known ones so only NEW findings fail the run.
  if (!opt.write_baseline_path.empty()) {
    if (!write_file(opt.write_baseline_path, render_baseline(findings))) {
      std::cerr << "srclint: cannot write baseline '"
                << opt.write_baseline_path << "'\n";
      return kExitError;
    }
    std::cerr << "srclint: wrote " << findings.size() << " finding(s) to '"
              << opt.write_baseline_path << "'\n";
    return kExitClean;
  }
  if (!opt.baseline_path.empty()) {
    Baseline baseline;
    if (!Baseline::load(opt.baseline_path, baseline)) {
      std::cerr << "srclint: cannot read baseline '" << opt.baseline_path
                << "'\n";
      return kExitError;
    }
    std::vector<Finding> fresh;
    for (Finding& f : findings) {
      if (!baseline.match(f)) fresh.push_back(std::move(f));
    }
    findings = std::move(fresh);
    const std::vector<std::string> stale = baseline.unmatched();
    if (!stale.empty()) {
      std::cerr << "srclint: " << stale.size()
                << " stale baseline entr(y/ies) no longer match — prune:\n";
      for (const std::string& entry : stale) {
        std::cerr << "  " << entry << "\n";
      }
    }
  }

  const std::string root_hint =
      tree_mode ? opt.root.generic_string() : std::string();
  if (!opt.sarif_out_path.empty()) {
    if (!write_file(opt.sarif_out_path,
                    render_findings(findings, OutputFormat::kSarif,
                                    root_hint))) {
      std::cerr << "srclint: cannot write '" << opt.sarif_out_path << "'\n";
      return kExitError;
    }
  }
  if (!opt.inventory_path.empty()) {
    if (!write_file(opt.inventory_path, render_shared_inventory(index))) {
      std::cerr << "srclint: cannot write '" << opt.inventory_path << "'\n";
      return kExitError;
    }
  }

  // Hard gate on mutable shared state in concurrency-sensitive layers.
  // Unlike R8 findings, `srclint:shared-ok` annotations do NOT exempt an
  // object here: they argue determinism, not freedom from data races.
  std::size_t shared_hits = 0;
  for (const SharedObject& obj : index.shared_objects) {
    if (obj.is_const) continue;
    for (const std::string& prefix : opt.fail_shared_under) {
      if (!obj.path.starts_with(prefix)) continue;
      std::cerr << "srclint: mutable shared state under '" << prefix
                << "': " << obj.path << ":" << obj.line << ": "
                << obj.qualified << " (" << storage_name(obj.storage) << ")";
      if (obj.annotated) std::cerr << " [annotated: " << obj.reason << "]";
      std::cerr << "\n";
      ++shared_hits;
      break;
    }
  }

  std::cout << render_findings(findings, opt.format, root_hint);
  if (!findings.empty() || shared_hits > 0) {
    if (!findings.empty()) {
      std::cerr << "srclint: " << findings.size() << " finding(s) in "
                << work.size() << " file(s) scanned\n";
    }
    if (shared_hits > 0) {
      std::cerr << "srclint: " << shared_hits
                << " mutable shared object(s) in gated path(s)\n";
    }
    return kExitFindings;
  }
  return kExitClean;
}
