// srclint — determinism & invariant static analysis for this repo.
//
// Two modes:
//   srclint --root <repo>          lint the whole tree (src/ bench/ tests/
//                                  tools/ examples/, minus gitignored paths
//                                  and tests/lint/fixtures/)
//   srclint [options] <file>...    lint explicit files (rule dir-scoping is
//                                  disabled; used by the lint self-tests)
//
// Options:
//   --rules R1,R2,...   run only the listed rules (default: all)
//   --no-header-check   skip R5 (header self-containment)
//   --cxx <compiler>    compiler for R5 TU checks (default: $CXX or c++)
//   --jobs <n>          parallel R5 compile jobs (default: hardware)
//   --list              print the files that would be linted, then exit 0
//
// Exit codes: 0 clean, 1 findings reported, 2 usage or I/O error — so CI
// can distinguish "violations" from "the linter itself broke".
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "header_check.hpp"
#include "lexer.hpp"
#include "rules.hpp"
#include "walker.hpp"

namespace {
namespace fs = std::filesystem;
using namespace srclint;

constexpr int kExitClean = 0;
constexpr int kExitFindings = 1;
constexpr int kExitError = 2;

int usage_error(const std::string& message) {
  std::cerr << "srclint: " << message << "\n"
            << "usage: srclint --root <dir> [--rules R1,..] [--no-header-check]"
               " [--cxx <compiler>] [--jobs <n>] [--list]\n"
            << "       srclint [options] <file>...\n";
  return kExitError;
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

struct Options {
  fs::path root;
  bool have_root = false;
  bool header_check = true;
  bool list_only = false;
  std::string cxx;
  std::size_t jobs = 0;
  RuleSet rules;
  std::vector<std::string> files;
};

bool parse_rules(const std::string& spec, RuleSet& out) {
  out = RuleSet::none();
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item == "R1") out.r1 = true;
    else if (item == "R2") out.r2 = true;
    else if (item == "R3") out.r3 = true;
    else if (item == "R4") out.r4 = true;
    else if (item == "R5") out.r5 = true;
    else return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (const char* env_cxx = std::getenv("CXX")) opt.cxx = env_cxx;
  if (opt.cxx.empty()) opt.cxx = "c++";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](std::string& out) {
      if (i + 1 >= argc) return false;
      out = argv[++i];
      return true;
    };
    if (arg == "--root") {
      std::string value;
      if (!next_value(value)) return usage_error("--root requires a value");
      opt.root = value;
      opt.have_root = true;
    } else if (arg == "--rules") {
      std::string value;
      if (!next_value(value)) return usage_error("--rules requires a value");
      if (!parse_rules(value, opt.rules)) {
        return usage_error("unknown rule in --rules '" + value + "'");
      }
    } else if (arg == "--cxx") {
      if (!next_value(opt.cxx)) return usage_error("--cxx requires a value");
    } else if (arg == "--jobs") {
      std::string value;
      if (!next_value(value)) return usage_error("--jobs requires a value");
      opt.jobs = static_cast<std::size_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (arg == "--no-header-check") {
      opt.header_check = false;
    } else if (arg == "--list") {
      opt.list_only = true;
    } else if (arg.starts_with("--")) {
      return usage_error("unknown option '" + arg + "'");
    } else {
      opt.files.push_back(arg);
    }
  }

  if (!opt.have_root && opt.files.empty()) {
    return usage_error("nothing to lint: pass --root <dir> or files");
  }
  if (opt.have_root && !opt.files.empty()) {
    return usage_error("--root and explicit files are mutually exclusive");
  }

  // Resolve the worklist: (absolute path, reporting path) pairs.
  struct Work {
    fs::path absolute;
    std::string report;
  };
  std::vector<Work> work;
  const bool tree_mode = opt.have_root;
  if (tree_mode) {
    std::error_code ec;
    const fs::path root = fs::canonical(opt.root, ec);
    if (ec || !fs::is_directory(root)) {
      return usage_error("--root '" + opt.root.string() +
                         "' is not a directory");
    }
    opt.root = root;
    const GitIgnore ignore = GitIgnore::load(root);
    for (const std::string& rel : discover(root, ignore)) {
      work.push_back({root / rel, rel});
    }
  } else {
    for (const std::string& file : opt.files) {
      work.push_back({fs::path(file), file});
    }
  }

  if (opt.list_only) {
    for (const Work& w : work) std::cout << w.report << "\n";
    return kExitClean;
  }

  // Lex everything up front: R2's container-name collection is global
  // (members are declared in headers, iterated in .cpp files).
  std::vector<LexedFile> lexed;
  lexed.reserve(work.size());
  for (const Work& w : work) {
    std::string text;
    if (!read_file(w.absolute, text)) {
      std::cerr << "srclint: cannot read '" << w.report << "'\n";
      return kExitError;
    }
    lexed.push_back(lex(w.report, text));
  }
  const std::unordered_set<std::string> unordered_names =
      collect_unordered_names(lexed);

  std::vector<Finding> findings;
  for (const LexedFile& file : lexed) {
    const bool r2_scope = tree_mode ? in_r2_scope_dir(file.path) : true;
    run_token_rules(file, opt.rules, r2_scope, unordered_names, findings);
  }

  // R5: headers must compile standalone.
  if (opt.rules.r5 && opt.header_check) {
    std::vector<HeaderToCheck> headers;
    for (std::size_t idx = 0; idx < work.size(); ++idx) {
      const Work& w = work[idx];
      if (w.absolute.extension() != ".hpp" && w.absolute.extension() != ".h") {
        continue;
      }
      // Tree mode checks the public (src/) headers only.
      if (tree_mode && !w.report.starts_with("src/")) continue;
      if (lexed[idx].suppressions.file_tags.contains("header")) continue;
      std::error_code ec;
      const fs::path abs = fs::absolute(w.absolute, ec);
      if (ec) return usage_error("cannot resolve '" + w.report + "'");
      headers.push_back({abs, w.report});
    }
    HeaderCheckConfig config;
    config.compiler = opt.cxx;
    config.jobs = opt.jobs;
    if (tree_mode) {
      config.include_dirs.push_back((opt.root / "src").generic_string());
    }
    for (const HeaderToCheck& h : headers) {
      config.include_dirs.push_back(h.absolute.parent_path().generic_string());
    }
    std::sort(config.include_dirs.begin(), config.include_dirs.end());
    config.include_dirs.erase(
        std::unique(config.include_dirs.begin(), config.include_dirs.end()),
        config.include_dirs.end());
    if (!check_headers(headers, config, findings)) {
      std::cerr << "srclint: header check could not run (compiler '"
                << opt.cxx << "' unavailable?)\n";
      return kExitError;
    }
  }

  // Deterministic report order: findings grouped per file in source order.
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.path != b.path) return a.path < b.path;
                     return a.line < b.line;
                   });
  for (const Finding& f : findings) {
    std::cout << f.path << ":" << f.line << ": " << f.rule << ": " << f.message
              << "\n";
  }
  if (!findings.empty()) {
    std::cerr << "srclint: " << findings.size() << " finding(s) in "
              << work.size() << " file(s) scanned\n";
    return kExitFindings;
  }
  return kExitClean;
}
