#include "header_check.hpp"

#include <cstdio>
#include <cstdlib>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <thread>

namespace srclint {
namespace fs = std::filesystem;
namespace {

/// Run a shell command, capturing stdout+stderr. Returns the process exit
/// status, or -1 when the command could not be started.
int run_command(const std::string& command, std::string& output) {
  const std::string wrapped = command + " 2>&1";
  FILE* pipe = popen(wrapped.c_str(), "r");
  if (pipe == nullptr) return -1;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = fread(buffer, 1, sizeof buffer, pipe)) > 0) {
    output.append(buffer, got);
  }
  const int status = pclose(pipe);
  if (status == -1) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return -1;
}

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "'\\''";
    else out.push_back(c);
  }
  out.push_back('\'');
  return out;
}

std::string first_line(const std::string& text) {
  const std::size_t nl = text.find('\n');
  return nl == std::string::npos ? text : text.substr(0, nl);
}

}  // namespace

bool check_headers(const std::vector<HeaderToCheck>& headers,
                   const HeaderCheckConfig& config, std::vector<Finding>& out) {
  if (headers.empty()) return true;

  char temp_template[] = "/tmp/srclint-hdr-XXXXXX";
  char* temp_dir = mkdtemp(temp_template);
  if (temp_dir == nullptr) return false;
  const fs::path tmp(temp_dir);

  std::string include_flags;
  for (const std::string& dir : config.include_dirs) {
    include_flags += " -I " + shell_quote(dir);
  }

  struct Result {
    bool failed = false;
    bool infra_error = false;
    std::string message;
  };
  std::vector<Result> results(headers.size());

  const std::size_t hw = std::thread::hardware_concurrency();
  const std::size_t jobs = std::min<std::size_t>(
      headers.size(),
      config.jobs != 0 ? config.jobs : (hw != 0 ? hw : 4));

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (std::size_t idx = next.fetch_add(1); idx < headers.size();
         idx = next.fetch_add(1)) {
      const HeaderToCheck& header = headers[idx];
      const fs::path tu = tmp / ("tu_" + std::to_string(idx) + ".cpp");
      {
        std::ofstream tu_out(tu);
        tu_out << "#include \"" << header.absolute.generic_string() << "\"\n"
               << "int main() { return 0; }\n";
        if (!tu_out) {
          results[idx].infra_error = true;
          continue;
        }
      }
      const std::string cmd = config.compiler + " -std=c++20 -fsyntax-only" +
                              include_flags + " " +
                              shell_quote(tu.generic_string());
      std::string output;
      const int status = run_command(cmd, output);
      if (status == -1) {
        results[idx].infra_error = true;
      } else if (status != 0) {
        results[idx].failed = true;
        results[idx].message = first_line(output);
      }
    }
  };

  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < jobs; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  std::error_code ec;
  fs::remove_all(tmp, ec);

  bool ok = true;
  for (std::size_t idx = 0; idx < headers.size(); ++idx) {
    if (results[idx].infra_error) ok = false;
    if (results[idx].failed) {
      out.push_back({headers[idx].report_path, 1, "R5",
                     "header is not self-contained (fails to compile "
                     "standalone): " +
                         results[idx].message});
    }
  }
  return ok;
}

}  // namespace srclint
