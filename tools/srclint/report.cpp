#include "report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

namespace srclint {
namespace {

/// Minimal JSON string escaping (control chars, quote, backslash).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct RuleDoc {
  const char* id;
  const char* name;
  const char* description;
};

/// SARIF rule metadata, kept in rule order.
constexpr RuleDoc kRuleDocs[] = {
    {"R1", "no-nondeterminism-sources",
     "Wall clocks, std::rand and std::random_device are banned; all "
     "randomness and time must come from the seeded Rng and the simulator "
     "clock."},
    {"R2", "no-unordered-iteration",
     "Iteration over unordered containers in simulation code — hash-table "
     "layout must never feed event or arithmetic order."},
    {"R3", "passive-observability-macros",
     "SRC_OBS_* macro arguments must not mutate state; recording is "
     "passive."},
    {"R4", "no-default-seeded-engines",
     "RNG engines must never be default-constructed; every generator "
     "threads an explicit seed."},
    {"R5", "self-contained-headers",
     "Public headers must compile standalone."},
    {"R6", "unit-suffix-consistency",
     "Identifiers carrying unit suffixes (_ns/_us/_ms, _bytes_per_sec/"
     "_gbps/_mbps) must not be mixed across units in additive arithmetic, "
     "comparisons, or assignment."},
    {"R7", "fp-determinism",
     "No ==/!= on floating-point values, no std::accumulate/std::reduce "
     "over floats, and no range-for reductions into a float without an "
     "ordering justification — FP addition is not associative."},
    {"R8", "shared-state-race-surface",
     "Every mutable object with static storage duration in simulation "
     "directories is part of the race surface blocking per-worker event "
     "lanes; it must be made per-instance or annotated "
     "srclint:shared-ok(<reason>)."},
    {"R9", "callback-capture-safety",
     "Lambdas passed to the scheduling API must not capture by reference "
     "or capture raw this without a srclint:capture-ok(<reason>) lifetime "
     "justification — the callback runs later, from the event loop."},
};

std::string render_text(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += f.path + ":" + std::to_string(f.line) + ": " + f.rule + ": " +
           f.message + "\n";
  }
  return out;
}

std::string render_json(const std::vector<Finding>& findings) {
  std::string out = "{\n  \"schema\": \"src-lint-v1\",\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : findings) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"path\": \"" + json_escape(f.path) +
           "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"" +
           f.rule + "\", \"message\": \"" + json_escape(f.message) + "\"}";
  }
  out += findings.empty() ? "]" : "\n  ]";
  out += ",\n  \"count\": " + std::to_string(findings.size()) + "\n}\n";
  return out;
}

std::string render_sarif(const std::vector<Finding>& findings,
                         const std::string& root_hint) {
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"srclint\",\n"
      "          \"version\": \"2.0.0\",\n"
      "          \"informationUri\": "
      "\"https://example.invalid/srclint\",\n"
      "          \"rules\": [\n";
  bool first = true;
  for (const RuleDoc& doc : kRuleDocs) {
    if (!first) out += ",\n";
    first = false;
    out += std::string("            {\"id\": \"") + doc.id +
           "\", \"name\": \"" + doc.name +
           "\", \"shortDescription\": {\"text\": \"" +
           json_escape(doc.description) + "\"}}";
  }
  out +=
      "\n          ]\n"
      "        }\n"
      "      },\n";
  if (!root_hint.empty()) {
    out += "      \"originalUriBaseIds\": {\"SRCROOT\": {\"uri\": \"file://" +
           json_escape(root_hint) + "/\"}},\n";
  }
  out += "      \"results\": [";
  first = true;
  for (const Finding& f : findings) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "        {\"ruleId\": \"" + f.rule +
           "\", \"level\": \"error\", \"message\": {\"text\": \"" +
           json_escape(f.message) +
           "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           json_escape(f.path) +
           (root_hint.empty() ? std::string("\"")
                              : std::string("\", \"uriBaseId\": \"SRCROOT\"")) +
           "}, \"region\": {\"startLine\": " + std::to_string(f.line) +
           "}}}]}";
  }
  out += findings.empty() ? "]\n" : "\n      ]\n";
  out +=
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace

bool parse_format(const std::string& name, OutputFormat& out) {
  if (name == "text") out = OutputFormat::kText;
  else if (name == "json") out = OutputFormat::kJson;
  else if (name == "sarif") out = OutputFormat::kSarif;
  else return false;
  return true;
}

std::string baseline_key(const Finding& finding) {
  return finding.path + ": " + finding.rule + ": " + finding.message;
}

bool Baseline::load(const std::string& path, Baseline& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::map<std::string, int> counted;
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    ++counted[line];
  }
  out.entries_.assign(counted.begin(), counted.end());
  return true;
}

bool Baseline::match(const Finding& finding) {
  const std::string key = baseline_key(finding);
  for (auto& [entry, remaining] : entries_) {
    if (entry == key && remaining > 0) {
      --remaining;
      return true;
    }
  }
  return false;
}

std::vector<std::string> Baseline::unmatched() const {
  std::vector<std::string> out;
  for (const auto& [entry, remaining] : entries_) {
    for (int i = 0; i < remaining; ++i) out.push_back(entry);
  }
  return out;
}

std::string render_baseline(const std::vector<Finding>& findings) {
  std::vector<std::string> keys;
  keys.reserve(findings.size());
  for (const Finding& f : findings) keys.push_back(baseline_key(f));
  std::sort(keys.begin(), keys.end());
  std::string out =
      "# srclint baseline — known findings tolerated while the tree is\n"
      "# burned down incrementally. One `path: rule: message` key per\n"
      "# line (line numbers dropped so unrelated edits don't invalidate\n"
      "# entries; duplicates count occurrences). Regenerate with\n"
      "#   srclint --root . --write-baseline tools/srclint/baseline.txt\n"
      "# Entries here are debt, not exemptions: fix or annotate, then\n"
      "# delete the line.\n";
  for (const std::string& key : keys) {
    out += key;
    out += "\n";
  }
  return out;
}

std::string render_findings(const std::vector<Finding>& findings,
                            OutputFormat format,
                            const std::string& root_hint) {
  switch (format) {
    case OutputFormat::kText: return render_text(findings);
    case OutputFormat::kJson: return render_json(findings);
    case OutputFormat::kSarif: return render_sarif(findings, root_hint);
  }
  return {};
}

std::string render_shared_inventory(const SymbolIndex& index) {
  std::string out =
      "{\n  \"schema\": \"src-shared-state-v1\",\n  \"objects\": [";
  bool first = true;
  for (const SharedObject& obj : index.shared_objects) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"path\": \"" + json_escape(obj.path) +
           "\", \"line\": " + std::to_string(obj.line) + ", \"name\": \"" +
           json_escape(obj.qualified) + "\", \"type\": \"" +
           json_escape(obj.type_text) + "\", \"storage\": \"" +
           storage_name(obj.storage) + "\", \"const\": " +
           (obj.is_const ? "true" : "false") + ", \"annotated\": " +
           (obj.annotated ? "true" : "false") + ", \"reason\": \"" +
           json_escape(obj.reason) + "\"}";
  }
  out += first ? "]" : "\n  ]";
  out += ",\n  \"count\": " + std::to_string(index.shared_objects.size()) +
         "\n}\n";
  return out;
}

}  // namespace srclint
