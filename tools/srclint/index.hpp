// srclint phase 1: a lightweight cross-TU symbol index built from the
// lexer's token streams (no libclang). It drives the semantic rule
// families R6-R9:
//
//   - every namespace-scope / static-storage-duration object, with
//     mutability, storage class, and any `srclint:shared-ok(<reason>)`
//     annotation (R8's race-surface inventory);
//   - names declared anywhere with a floating-point type (R7 feeds
//     `==`/`!=` and reduction checks from it);
//   - functions whose bodies call the simulator scheduling API directly
//     (`schedule` / `schedule_at` / `schedule_after`) — R9 treats a
//     lambda passed to any of them as a deferred callback, cross-TU.
//
// The scanner is token-level and heuristic by design: it tracks a scope
// stack (namespace / type / function / block), classifies every `{` from
// the statement tokens that precede it, and parses declarations at
// statement granularity. It is deliberately conservative — ambiguous
// declarators are skipped, never guessed at.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "lexer.hpp"

namespace srclint {

/// Storage class of an indexed object (R8 inventory vocabulary).
enum class Storage {
  kNamespaceScope,  ///< namespace-scope variable (incl. `static` / `inline`)
  kStaticMember,    ///< `static` data member of a class/struct
  kLocalStatic,     ///< function-local `static`
  kThreadLocal,     ///< `thread_local` at any scope
};

const char* storage_name(Storage storage);

/// One object with static storage duration found anywhere in the tree.
struct SharedObject {
  std::string path;
  int line = 0;
  std::string name;        ///< declared identifier
  std::string qualified;   ///< enclosing namespaces/classes + name
  std::string type_text;   ///< declaration specifier tokens, joined
  Storage storage = Storage::kNamespaceScope;
  bool is_const = false;   ///< const / constexpr / constinit-const
  bool annotated = false;  ///< carries `srclint:shared-ok(...)`
  std::string reason;      ///< the annotation's justification, if any
};

/// The cross-TU index. Name sets are shared across files because members
/// are declared in headers and used in .cpp files.
struct SymbolIndex {
  /// Every static-storage object, const or not, annotated or not — the
  /// full inventory. R8 findings are the mutable, unannotated subset.
  std::vector<SharedObject> shared_objects;

  /// Identifiers declared with type `double` or `float` that follow the
  /// trailing-underscore member convention (`alpha_`). Cross-TU on
  /// purpose: members are declared in headers and compared in .cpp
  /// files. Non-member float names are collected per file by R7.
  std::unordered_set<std::string> float_names;

  /// Functions whose bodies call `schedule(` / `schedule_at(` /
  /// `schedule_after(` directly. Seeded with those three names, so the
  /// set is usable as "calls that defer their lambda argument".
  std::unordered_set<std::string> scheduler_functions;
};

/// Build the index over every lexed file. Deterministic: objects are
/// recorded in (file, line) order of the input vector. With
/// `scope_by_dir` (tree mode), wrapper propagation into
/// `scheduler_functions` draws only from simulation source — helper
/// functions in tests/, bench/ and examples/ that happen to call the
/// scheduling API must not turn their (possibly generic) names into
/// scheduler calls tree-wide. Explicit-file mode indexes everything.
SymbolIndex build_index(const std::vector<LexedFile>& files,
                        bool scope_by_dir);

/// Tokens with preprocessor-directive lines removed (a `#` that starts a
/// line consumes the rest of that logical line, honoring `\` splices).
/// The analyzer works on this stream; R1-R4 keep the raw one.
std::vector<Token> strip_preprocessor(const std::vector<Token>& tokens);

/// Names declared with type `double`/`float` in `toks` (members, locals,
/// parameters, range-for variables). Used per-file by R7 and, filtered to
/// the `name_` member convention, cross-TU by the index.
std::vector<std::string> collect_float_names(const std::vector<Token>& toks);

}  // namespace srclint
