// srclint file discovery: walks the scanned subtrees of a repo root,
// honoring the root .gitignore (simplified semantics) plus built-in skips
// (`.git/`, lint fixtures). Paths are returned sorted so findings are
// emitted in a deterministic order.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace srclint {

/// Simplified .gitignore matcher. Supports the forms this repo uses:
///   dir/        — ignore a directory anywhere (and everything below it)
///   /anchored   — pattern anchored at the repo root
///   *.ext, name — fnmatch-style globs against the basename and against
///                 every path component
/// Negations (`!`) and `**` are not supported and are ignored.
class GitIgnore {
 public:
  /// Loads `<root>/.gitignore`; a missing file yields an empty matcher.
  static GitIgnore load(const std::filesystem::path& root);

  /// True when the path (relative to the repo root, '/' separators) is
  /// ignored.
  bool ignored(const std::string& rel_path) const;

 private:
  struct Pattern {
    std::string glob;
    bool anchored = false;  ///< leading '/'
    bool dir_only = false;  ///< trailing '/'
  };
  std::vector<Pattern> patterns_;
};

/// Discover lintable sources (.cpp/.cc/.hpp/.h) under the scanned subtrees
/// of `root`, skipping gitignored paths. Returned paths are relative to
/// `root`, sorted.
std::vector<std::string> discover(const std::filesystem::path& root,
                                  const GitIgnore& ignore);

/// Subtrees of the repo root that srclint scans.
inline constexpr const char* kScannedDirs[] = {"src", "bench", "tests",
                                               "tools", "examples"};

/// Lint fixtures contain deliberate violations; the tree walk must never
/// report them (the lint self-test lints them explicitly instead).
inline constexpr const char* kFixtureDir = "tests/lint/fixtures";

}  // namespace srclint
