#include "index.hpp"

#include <array>

namespace srclint {
namespace {

bool is_ident(const Token& t) { return t.kind == TokKind::kIdentifier; }
bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}
bool ident_is(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdentifier && t.text == text;
}

const std::unordered_set<std::string> kTypeKeywords = {"class", "struct",
                                                      "union", "enum"};

/// Specifier flags recognized while parsing a declaration statement.
struct DeclFlags {
  bool is_static = false;
  bool is_thread_local = false;
  bool is_const = false;      // const / constexpr / constinit
  bool is_extern = false;
  bool is_inline = false;
};

/// Statements that start with (or contain, at top level) one of these are
/// never simple object declarations.
const std::unordered_set<std::string> kNotADecl = {
    "using",   "typedef",  "template", "friend",   "namespace",
    "operator", "static_assert", "return", "throw", "goto",
    "public",  "private",  "protected", "case",    "default",
    "if",      "else",     "for",      "while",    "do",
    "switch",  "break",    "continue", "new",      "delete",
    "asm",     "concept",  "requires", "co_return", "co_yield",
    "co_await"};

/// Starting at the index of a `<` token, return the index one past its
/// matching `>` (`>>` counts twice), or `npos` when it does not read as a
/// template argument list.
std::size_t skip_template(const std::vector<Token>& toks, std::size_t i,
                          std::size_t end) {
  int depth = 0;
  for (; i < end; ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    const std::string& t = toks[i].text;
    if (t == "<") depth += 1;
    else if (t == "<<") depth += 2;
    else if (t == ">") depth -= 1;
    else if (t == ">>") depth -= 2;
    else if (t == ";" || t == "{") return std::string::npos;
    if (depth <= 0) return i + 1;
  }
  return std::string::npos;
}

/// One scope frame. File scope behaves as a namespace frame.
struct Scope {
  enum Kind { kNamespace, kType, kFunction, kBlock } kind;
  std::string name;            ///< namespace / type / function name
  int entry_paren_depth = 0;   ///< paren depth when the `{` was seen
};

/// Walk `stmt` tokens [begin, end) at top level (parens, brackets and
/// template argument lists skipped), invoking `fn(index)` per token.
template <typename F>
void for_each_top_level(const std::vector<Token>& toks, std::size_t begin,
                        std::size_t end, F&& fn) {
  int paren = 0;
  int bracket = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(") { ++paren; continue; }
      if (t.text == ")") { --paren; continue; }
      if (t.text == "[") { ++bracket; continue; }
      if (t.text == "]") { --bracket; continue; }
    }
    if (paren > 0 || bracket > 0) continue;
    // `ident <` reads as a template argument list; skip it so `>` inside
    // never looks like an operator and its contents never look top-level.
    if (is_ident(t) && i + 1 < end && is_punct(toks[i + 1], "<")) {
      const std::size_t after = skip_template(toks, i + 1, end);
      if (after != std::string::npos) {
        fn(i);
        i = after - 1;
        continue;
      }
    }
    fn(i);
  }
}

/// Parsed declaration result.
struct Decl {
  bool is_object = false;  ///< a variable (not a function / alias / ...)
  std::string name;
  std::string type_text;
  DeclFlags flags;
};

Decl parse_decl(const std::vector<Token>& toks, std::size_t begin,
                std::size_t end) {
  Decl out;
  if (end - begin < 2) return out;

  // Declarator region stops at a top-level `=` (initializer).
  std::size_t eq = end;
  bool rejected = false;
  for_each_top_level(toks, begin, end, [&](std::size_t i) {
    if (rejected || i >= eq) return;
    const Token& t = toks[i];
    if (is_punct(t, "=") && eq == end) {
      eq = i;
      return;
    }
    if (is_ident(t)) {
      if (kNotADecl.contains(t.text) || kTypeKeywords.contains(t.text)) {
        rejected = true;
        return;
      }
      if (t.text == "static") out.flags.is_static = true;
      else if (t.text == "thread_local") out.flags.is_thread_local = true;
      else if (t.text == "const" || t.text == "constexpr" ||
               t.text == "constinit") {
        out.flags.is_const = true;
      } else if (t.text == "extern") out.flags.is_extern = true;
      else if (t.text == "inline") out.flags.is_inline = true;
    }
  });
  if (rejected) return out;

  // The declared name is the last top-level identifier in the declarator
  // region that is not a specifier; the token after it decides whether
  // this is an object (`=`, `[`, end) or a function (`(`).
  static const std::unordered_set<std::string> kSpecifiers = {
      "static", "thread_local", "const", "constexpr", "constinit",
      "extern", "inline", "mutable", "volatile", "register", "unsigned",
      "signed", "long", "short", "auto"};
  std::size_t name_idx = std::string::npos;
  for_each_top_level(toks, begin, eq, [&](std::size_t i) {
    if (is_ident(toks[i]) && !kSpecifiers.contains(toks[i].text)) {
      name_idx = i;
    }
  });
  if (name_idx == std::string::npos) return out;
  // Reject if nothing but specifiers precedes the name (a bare identifier
  // statement, an enumerator, a label...).
  if (name_idx == begin) return out;

  // Token following the name at any level.
  const std::size_t after = name_idx + 1;
  if (after < eq) {
    if (is_punct(toks[after], "(")) return out;  // function declarator
    if (!is_punct(toks[after], "[")) return out;  // trailing junk: give up
  }
  if (eq == end && out.flags.is_extern) return out;  // defined elsewhere

  out.is_object = true;
  out.name = toks[name_idx].text;
  for (std::size_t i = begin; i < name_idx; ++i) {
    if (!out.type_text.empty()) out.type_text.push_back(' ');
    out.type_text += toks[i].text;
  }
  return out;
}

/// Name of the function being defined, given the statement tokens that
/// precede its `{`: the identifier before the first top-level `(`.
std::string function_name(const std::vector<Token>& toks, std::size_t begin,
                          std::size_t end) {
  int paren = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "(")) {
      if (paren == 0 && i > begin && is_ident(toks[i - 1])) {
        return toks[i - 1].text;
      }
      ++paren;
    } else if (is_punct(t, ")")) {
      --paren;
    }
  }
  return {};
}

bool contains_top_level_parens(const std::vector<Token>& toks,
                               std::size_t begin, std::size_t end) {
  bool found = false;
  int paren = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (is_punct(toks[i], "(")) {
      if (paren == 0) found = true;
      ++paren;
    } else if (is_punct(toks[i], ")")) {
      --paren;
    }
  }
  return found;
}

bool has_top_level_assign(const std::vector<Token>& toks, std::size_t begin,
                          std::size_t end) {
  bool found = false;
  for_each_top_level(toks, begin, end, [&](std::size_t i) {
    if (!is_punct(toks[i], "=")) return;
    if (i > begin && ident_is(toks[i - 1], "operator")) return;
    found = true;
  });
  return found;
}

bool has_top_level_ident(const std::vector<Token>& toks, std::size_t begin,
                         std::size_t end, std::string_view word) {
  bool found = false;
  for_each_top_level(toks, begin, end, [&](std::size_t i) {
    if (ident_is(toks[i], word)) found = true;
  });
  return found;
}

}  // namespace

std::vector<std::string> collect_float_names(const std::vector<Token>& toks) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i]) ||
        (toks[i].text != "double" && toks[i].text != "float")) {
      continue;
    }
    std::size_t j = i + 1;
    while (j < toks.size() &&
           (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
            is_punct(toks[j], "&&") || ident_is(toks[j], "const"))) {
      ++j;
    }
    if (j < toks.size() && is_ident(toks[j]) &&
        !(j + 1 < toks.size() && is_punct(toks[j + 1], "("))) {
      out.push_back(toks[j].text);
    }
  }
  return out;
}

const char* storage_name(Storage storage) {
  switch (storage) {
    case Storage::kNamespaceScope: return "namespace-scope";
    case Storage::kStaticMember: return "static-member";
    case Storage::kLocalStatic: return "local-static";
    case Storage::kThreadLocal: return "thread-local";
  }
  return "unknown";
}

std::vector<Token> strip_preprocessor(const std::vector<Token>& tokens) {
  std::vector<Token> out;
  out.reserve(tokens.size());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    const bool at_line_start = i == 0 || tokens[i - 1].line < t.line;
    if (is_punct(t, "#") && at_line_start) {
      // Consume the whole directive: every token through end of line,
      // following `\` splices onto continuation lines.
      int line = t.line;
      std::size_t j = i + 1;
      while (j < tokens.size()) {
        if (tokens[j].line == line) {
          ++j;
          continue;
        }
        if (is_punct(tokens[j - 1], "\\") && tokens[j - 1].line == line) {
          line = tokens[j].line;
          ++j;
          continue;
        }
        break;
      }
      i = j - 1;
      continue;
    }
    out.push_back(t);
  }
  return out;
}

SymbolIndex build_index(const std::vector<LexedFile>& files,
                        bool scope_by_dir) {
  SymbolIndex index;
  index.scheduler_functions = {"schedule", "schedule_at", "schedule_after"};

  for (const LexedFile& file : files) {
    const std::vector<Token> toks = strip_preprocessor(file.tokens);

    // Wrapper propagation draws only from simulation source: a bench or
    // test helper that happens to call schedule_at inside a function named
    // `run` must not turn every `pool.run(...)` call site into a scheduler
    // call. Direct calls to the seed names are still flagged everywhere.
    const bool seeds_wrappers =
        !scope_by_dir || (!file.path.starts_with("tests/") &&
                          !file.path.starts_with("bench/") &&
                          !file.path.starts_with("examples/"));

    // Pass A: floating-point declared names. Only trailing-underscore
    // names (the repo's member convention) are shared across TUs — a
    // header's `double alpha_;` makes `alpha_ == x` in any .cpp an R7
    // finding. Short local names (`total`, `x`) would collide between
    // unrelated files, so R7 re-collects those per file.
    for (const std::string& name : collect_float_names(toks)) {
      if (name.ends_with("_")) index.float_names.insert(name);
    }

    // Pass B: scope walk — shared-state objects and scheduler functions.
    std::vector<Scope> stack;
    auto current_kind = [&]() {
      return stack.empty() ? Scope::kNamespace : stack.back().kind;
    };
    auto entry_depth = [&]() {
      return stack.empty() ? 0 : stack.back().entry_paren_depth;
    };
    auto qualify = [&](const std::string& name) {
      std::string q;
      for (const Scope& s : stack) {
        if ((s.kind == Scope::kNamespace || s.kind == Scope::kType) &&
            !s.name.empty()) {
          q += s.name;
          q += "::";
        }
      }
      return q + name;
    };

    auto record = [&](const Decl& decl, int line, Storage storage) {
      SharedObject obj;
      obj.path = file.path;
      obj.line = line;
      obj.name = decl.name;
      obj.qualified = qualify(decl.name);
      obj.type_text = decl.type_text;
      obj.storage = storage;
      obj.is_const = decl.flags.is_const;
      obj.annotated = file.suppressions.active("shared", line);
      obj.reason = file.suppressions.reason("shared", line);
      index.shared_objects.push_back(std::move(obj));
    };

    auto process_stmt = [&](std::size_t begin, std::size_t end) {
      if (begin >= end) return;
      const Scope::Kind kind = current_kind();
      if (kind == Scope::kFunction || kind == Scope::kBlock) {
        // Only static-storage locals matter inside bodies.
        if (!ident_is(toks[begin], "static") &&
            !ident_is(toks[begin], "thread_local")) {
          return;
        }
      }
      const Decl decl = parse_decl(toks, begin, end);
      if (!decl.is_object) return;
      const int line = toks[begin].line;
      if (decl.flags.is_thread_local) {
        record(decl, line, Storage::kThreadLocal);
      } else if (kind == Scope::kNamespace) {
        record(decl, line, Storage::kNamespaceScope);
      } else if (kind == Scope::kType && decl.flags.is_static) {
        record(decl, line, Storage::kStaticMember);
      } else if ((kind == Scope::kFunction || kind == Scope::kBlock) &&
                 decl.flags.is_static) {
        record(decl, line, Storage::kLocalStatic);
      }
    };

    int paren_depth = 0;
    std::size_t stmt_start = 0;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (is_punct(t, "(")) { ++paren_depth; continue; }
      if (is_punct(t, ")")) { --paren_depth; continue; }

      // Scheduler-call detection: attribute to the nearest enclosing
      // function definition (lambda bodies attribute to their function).
      if (seeds_wrappers && is_ident(t) && i + 1 < toks.size() &&
          is_punct(toks[i + 1], "(") &&
          (t.text == "schedule" || t.text == "schedule_at" ||
           t.text == "schedule_after")) {
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
          if (it->kind == Scope::kFunction) {
            if (!it->name.empty()) {
              index.scheduler_functions.insert(it->name);
            }
            break;
          }
        }
      }

      if (is_punct(t, "{")) {
        Scope scope;
        scope.entry_paren_depth = paren_depth;
        const Scope::Kind outer = current_kind();
        if (outer == Scope::kFunction || outer == Scope::kBlock ||
            paren_depth > entry_depth()) {
          scope.kind = Scope::kBlock;
        } else if (has_top_level_assign(toks, stmt_start, i)) {
          scope.kind = Scope::kBlock;  // brace / lambda initializer
        } else if (has_top_level_ident(toks, stmt_start, i, "namespace")) {
          scope.kind = Scope::kNamespace;
          if (i > stmt_start && is_ident(toks[i - 1]) &&
              toks[i - 1].text != "namespace") {
            scope.name = toks[i - 1].text;
          }
        } else if ((has_top_level_ident(toks, stmt_start, i, "class") ||
                    has_top_level_ident(toks, stmt_start, i, "struct") ||
                    has_top_level_ident(toks, stmt_start, i, "union") ||
                    has_top_level_ident(toks, stmt_start, i, "enum")) &&
                   !(i > stmt_start && is_punct(toks[i - 1], ")"))) {
          scope.kind = Scope::kType;
          for_each_top_level(toks, stmt_start, i, [&](std::size_t k) {
            if (is_ident(toks[k]) && !kTypeKeywords.contains(toks[k].text) &&
                toks[k].text != "final" && scope.name.empty()) {
              scope.name = toks[k].text;
            }
          });
        } else if (contains_top_level_parens(toks, stmt_start, i)) {
          scope.kind = Scope::kFunction;
          scope.name = function_name(toks, stmt_start, i);
        } else {
          scope.kind = Scope::kBlock;
        }
        stack.push_back(std::move(scope));
        stmt_start = i + 1;
        continue;
      }
      if (is_punct(t, "}")) {
        if (!stack.empty()) stack.pop_back();
        stmt_start = i + 1;
        continue;
      }
      if (is_punct(t, ";") && paren_depth == entry_depth()) {
        process_stmt(stmt_start, i);
        stmt_start = i + 1;
        continue;
      }
      // Access specifiers end a "statement" at class scope.
      if (is_punct(t, ":") && current_kind() == Scope::kType &&
          i == stmt_start + 1 &&
          (ident_is(toks[stmt_start], "public") ||
           ident_is(toks[stmt_start], "private") ||
           ident_is(toks[stmt_start], "protected"))) {
        stmt_start = i + 1;
        continue;
      }
    }
  }
  return index;
}

}  // namespace srclint
