#include "walker.hpp"

#include <fnmatch.h>

#include <algorithm>
#include <fstream>
#include <sstream>

namespace srclint {
namespace fs = std::filesystem;

GitIgnore GitIgnore::load(const fs::path& root) {
  GitIgnore out;
  std::ifstream in(root / ".gitignore");
  if (!in) return out;
  std::string raw;
  while (std::getline(in, raw)) {
    // Trim trailing whitespace / CR.
    while (!raw.empty() &&
           (raw.back() == ' ' || raw.back() == '\t' || raw.back() == '\r')) {
      raw.pop_back();
    }
    if (raw.empty() || raw[0] == '#' || raw[0] == '!') continue;
    Pattern p;
    if (raw.back() == '/') {
      p.dir_only = true;
      raw.pop_back();
    }
    if (!raw.empty() && raw[0] == '/') {
      p.anchored = true;
      raw.erase(raw.begin());
    }
    if (raw.empty()) continue;
    p.glob = raw;
    out.patterns_.push_back(std::move(p));
  }
  return out;
}

bool GitIgnore::ignored(const std::string& rel_path) const {
  // Split into components once; each pattern is then matched against the
  // basename, every component (unanchored), or the leading path (anchored).
  std::vector<std::string> components;
  {
    std::stringstream ss(rel_path);
    std::string part;
    while (std::getline(ss, part, '/')) {
      if (!part.empty()) components.push_back(part);
    }
  }
  if (components.empty()) return false;

  for (const Pattern& p : this->patterns_) {
    const bool has_slash = p.glob.find('/') != std::string::npos;
    if (p.anchored || has_slash) {
      // Match against the full relative path and every directory prefix
      // (a matching prefix ignores everything below that directory).
      std::string prefix;
      for (std::size_t k = 0; k < components.size(); ++k) {
        if (!prefix.empty()) prefix.push_back('/');
        prefix += components[k];
        const bool is_dir_prefix = k + 1 < components.size();
        if (p.dir_only && !is_dir_prefix) continue;
        if (fnmatch(p.glob.c_str(), prefix.c_str(), 0) == 0) return true;
      }
    } else {
      for (std::size_t k = 0; k < components.size(); ++k) {
        const bool is_dir_prefix = k + 1 < components.size();
        if (p.dir_only && !is_dir_prefix) continue;
        if (fnmatch(p.glob.c_str(), components[k].c_str(), 0) == 0) return true;
      }
    }
  }
  return false;
}

std::vector<std::string> discover(const fs::path& root, const GitIgnore& ignore) {
  std::vector<std::string> out;
  for (const char* subdir : kScannedDirs) {
    const fs::path base = root / subdir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) continue;
    for (fs::recursive_directory_iterator it(base, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      const fs::path& path = it->path();
      const std::string rel = fs::relative(path, root, ec).generic_string();
      if (it->is_directory(ec)) {
        if (rel == kFixtureDir || rel.starts_with(".") || ignore.ignored(rel)) {
          it.disable_recursion_pending();
        }
        continue;
      }
      const std::string ext = path.extension().string();
      if (ext != ".cpp" && ext != ".cc" && ext != ".hpp" && ext != ".h") continue;
      if (ignore.ignored(rel)) continue;
      out.push_back(rel);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace srclint
