#include "lexer.hpp"

#include <array>
#include <cctype>

namespace srclint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

/// Multi-character punctuators, longest first within each leading char.
constexpr std::array<std::string_view, 26> kMultiPunct = {
    "<<=", ">>=", "<=>", "->*", "...", "::", "->", "++", "--", "<<", ">>",
    "<=",  ">=",  "==",  "!=",  "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=",  "|=",  "^=",  "##",
};

/// Scan a comment body for `srclint:<tag>-ok` / `srclint:<tag>-ok-file`.
void collect_tags(std::string_view comment, int line, Suppressions& out) {
  constexpr std::string_view kPrefix = "srclint:";
  std::size_t pos = 0;
  while ((pos = comment.find(kPrefix, pos)) != std::string_view::npos) {
    pos += kPrefix.size();
    std::size_t end = pos;
    while (end < comment.size() &&
           (ident_char(comment[end]) || comment[end] == '-')) {
      ++end;
    }
    std::string_view word = comment.substr(pos, end - pos);
    constexpr std::string_view kOkFile = "-ok-file";
    constexpr std::string_view kOk = "-ok";
    if (word.size() > kOkFile.size() && word.ends_with(kOkFile)) {
      out.file_tags.emplace(word.substr(0, word.size() - kOkFile.size()));
    } else if (word.size() > kOk.size() && word.ends_with(kOk)) {
      const std::string tag(word.substr(0, word.size() - kOk.size()));
      out.line_tags[line].emplace(tag);
      // Optional parenthesized justification: `srclint:<tag>-ok(reason)`.
      if (end < comment.size() && comment[end] == '(') {
        const std::size_t close = comment.find(')', end + 1);
        if (close != std::string_view::npos) {
          out.line_reasons[line][tag] =
              std::string(comment.substr(end + 1, close - end - 1));
          end = close + 1;
        }
      }
    }
    pos = end;
  }
}

}  // namespace

LexedFile lex(std::string path, std::string_view text) {
  LexedFile out;
  out.path = std::move(path);
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();

  auto advance_over = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (text[i] == '\n') ++line;
    }
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const std::size_t end = text.find('\n', i);
      const std::size_t stop = end == std::string_view::npos ? n : end;
      collect_tags(text.substr(i, stop - i), line, out.suppressions);
      i = stop;
      continue;
    }
    // Block comment. Tags are attributed to the line the comment starts on.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const std::size_t end = text.find("*/", i + 2);
      const std::size_t stop = end == std::string_view::npos ? n : end + 2;
      collect_tags(text.substr(i, stop - i), line, out.suppressions);
      advance_over(stop - i);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      std::size_t open = text.find('(', i + 2);
      if (open != std::string_view::npos) {
        std::string closer = ")";
        closer.append(text.substr(i + 2, open - (i + 2)));
        closer.push_back('"');
        std::size_t end = text.find(closer, open + 1);
        const std::size_t stop =
            end == std::string_view::npos ? n : end + closer.size();
        advance_over(stop - i);
        continue;
      }
    }
    // String / char literal (with escape handling).
    if (c == '"' || c == '\'') {
      std::size_t j = i + 1;
      while (j < n && text[j] != c) {
        if (text[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      advance_over((j < n ? j + 1 : n) - i);
      continue;
    }
    // Identifier.
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(text[j])) ++j;
      out.tokens.push_back(
          {TokKind::kIdentifier, std::string(text.substr(i, j - i)), line});
      i = j;
      continue;
    }
    // Number (pp-number is close enough: digits, dots, exponents, suffixes).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      std::size_t j = i + 1;
      while (j < n && (ident_char(text[j]) || text[j] == '.' ||
                       ((text[j] == '+' || text[j] == '-') &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                         text[j - 1] == 'p' || text[j - 1] == 'P')))) {
        ++j;
      }
      out.tokens.push_back(
          {TokKind::kNumber, std::string(text.substr(i, j - i)), line});
      i = j;
      continue;
    }
    // Punctuator: longest multi-char match first.
    bool matched = false;
    for (std::string_view p : kMultiPunct) {
      if (text.substr(i, p.size()) == p) {
        out.tokens.push_back({TokKind::kPunct, std::string(p), line});
        i += p.size();
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

}  // namespace srclint
