// srclint lexer: a minimal C++ tokenizer sufficient for token-level lint
// rules. It is NOT a full C++ lexer — it strips comments, string literals
// (including raw strings) and character literals, keeps file/line
// provenance for every token, and records the text of every comment so
// suppression tags (`// srclint:<rule>-ok`) can be resolved per line.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace srclint {

enum class TokKind {
  kIdentifier,  ///< identifiers and keywords (no distinction needed)
  kNumber,      ///< numeric literal (pp-number)
  kPunct,       ///< operator / punctuator, longest-match multi-char
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
};

/// Suppression tags found in comments, keyed by line number. A finding of
/// rule tag T at line L is suppressed when `srclint:T-ok` appears on line
/// L or L-1, or `srclint:T-ok-file` appears anywhere in the file. A tag may
/// carry a parenthesized justification — `srclint:shared-ok(reset per run)`
/// — which is preserved so the R8 shared-state inventory can report it.
struct Suppressions {
  std::unordered_map<int, std::unordered_set<std::string>> line_tags;
  std::unordered_set<std::string> file_tags;
  /// line -> tag -> justification text (only tags written with `(...)`).
  std::unordered_map<int, std::unordered_map<std::string, std::string>>
      line_reasons;

  bool active(const std::string& tag, int line) const {
    if (file_tags.contains(tag)) return true;
    for (int probe = line - 1; probe <= line; ++probe) {
      auto it = line_tags.find(probe);
      if (it != line_tags.end() && it->second.contains(tag)) return true;
    }
    return false;
  }

  /// Justification attached to an active `tag` suppression near `line`
  /// (same or preceding line); empty when none was written.
  std::string reason(const std::string& tag, int line) const {
    for (int probe = line; probe >= line - 1; --probe) {
      auto it = line_reasons.find(probe);
      if (it == line_reasons.end()) continue;
      auto jt = it->second.find(tag);
      if (jt != it->second.end()) return jt->second;
    }
    return {};
  }
};

struct LexedFile {
  std::string path;      ///< path as reported in findings (relative when known)
  std::vector<Token> tokens;
  Suppressions suppressions;
};

/// Tokenize `text`. Comments and literals are consumed (never emitted as
/// tokens); comment bodies are scanned for suppression tags.
LexedFile lex(std::string path, std::string_view text);

}  // namespace srclint
