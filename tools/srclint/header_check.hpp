// srclint rule R5: every public header must be self-contained — a
// translation unit consisting of just `#include "header"` must compile.
// Enforced by generating one TU per header and running the configured
// compiler with -fsyntax-only; header TUs compile in parallel.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "rules.hpp"

namespace srclint {

struct HeaderCheckConfig {
  std::string compiler = "c++";            ///< invoked via the shell
  std::vector<std::string> include_dirs;   ///< -I directories
  std::size_t jobs = 0;                    ///< 0 = hardware concurrency
};

/// Check each header (absolute path + reporting path pairs). A header whose
/// lexed source carries the `header` file-suppression tag is skipped by the
/// caller. Appends one R5 finding per non-compiling header. Returns false
/// on infrastructure failure (temp dir or compiler unrunnable), which the
/// caller must turn into exit code 2.
struct HeaderToCheck {
  std::filesystem::path absolute;
  std::string report_path;
};

bool check_headers(const std::vector<HeaderToCheck>& headers,
                   const HeaderCheckConfig& config, std::vector<Finding>& out);

}  // namespace srclint
