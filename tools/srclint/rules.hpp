// srclint rules R1-R4 (token-level) and R6-R9 (semantic, driven by the
// cross-TU SymbolIndex from index.hpp). R5 (header self-containment)
// lives in header_check.hpp because it shells out to the compiler.
//
// Rule catalog (suppression tag in brackets; suppress a site with
// `// srclint:<tag>-ok` on the same or preceding line, or a whole file
// with `// srclint:<tag>-ok-file`; a parenthesized justification —
// `srclint:shared-ok(reset between runs)` — is preserved in inventories):
//   R1 [nondet]  no nondeterminism sources: std::rand/srand/random_device,
//                system_clock/steady_clock/high_resolution_clock, and free
//                calls to time()/clock()/gettimeofday()/clock_gettime().
//   R2 [ordered] no iteration (range-for / .begin()) over unordered
//                containers in simulation code — hash-table layout must
//                never feed event or arithmetic order.
//   R3 [obs]     observability macro arguments must be passive: no
//                assignments, ++/--, or calls to known mutating APIs.
//   R4 [seed]    no default-constructed RNG engines — every generator
//                threads an explicit seed.
//   R6 [units]   identifiers carrying unit suffixes (_ns/_us/_ms,
//                _bytes_per_sec/_gbps/_mbps) must not be mixed across
//                units in additive arithmetic, comparisons, or
//                assignment.
//   R7 [fp]      FP determinism in sim-critical dirs: no ==/!= on
//                floating values, no std::accumulate over floats, no
//                range-for += reductions into a float without an
//                ordering justification.
//   R8 [shared]  every mutable object with static storage duration in
//                src/sim, src/net, src/core, src/fabric is a finding
//                unless annotated `srclint:shared-ok(<reason>)` — the
//                annotated inventory is what the pod-scale sharding
//                refactor consumes.
//   R9 [capture] lambdas passed to the scheduling API (schedule /
//                schedule_at / schedule_after, or any indexed function
//                that calls them directly) must not capture by reference
//                or capture raw `this` without a
//                `srclint:capture-ok(<lifetime justification>)`.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "index.hpp"
#include "lexer.hpp"

namespace srclint {

struct Finding {
  std::string path;
  int line = 0;
  std::string rule;  ///< "R1".."R9"
  std::string message;
};

/// Which rules to run (default: all).
struct RuleSet {
  bool r1 = true, r2 = true, r3 = true, r4 = true, r5 = true;
  bool r6 = true, r7 = true, r8 = true, r9 = true;
  static RuleSet none() {
    RuleSet set;
    set.r1 = set.r2 = set.r3 = set.r4 = set.r5 = false;
    set.r6 = set.r7 = set.r8 = set.r9 = false;
    return set;
  }
};

/// Per-file scoping decisions (all true in explicit-file mode).
struct RuleScope {
  bool r2 = true;  ///< sim-critical dirs (see in_r2_scope_dir)
  bool r7 = true;  ///< same sim-critical set
  bool r8 = true;  ///< src/sim, src/net, src/core, src/fabric
  bool r9 = true;  ///< all of src/
};

/// Pass 1 of R2: names declared (directly or through a type alias) as
/// std::unordered_{map,set,multimap,multiset} anywhere in the scanned
/// tree. Shared across files because members are declared in headers but
/// iterated in .cpp files.
std::unordered_set<std::string> collect_unordered_names(
    const std::vector<LexedFile>& files);

/// Run R1-R4 and R6-R9 on one file. `index` is the phase-1 cross-TU
/// symbol index. Findings are appended in source order per rule.
void run_token_rules(const LexedFile& file, const RuleSet& rules,
                     const RuleScope& scope,
                     const std::unordered_set<std::string>& unordered_names,
                     const SymbolIndex& index, std::vector<Finding>& out);

/// True when `rel_path` is inside a directory where R2/R7 apply
/// (src/sim, src/net, src/nvme, src/ssd, src/core, src/fabric,
/// src/runner, src/scenario, src/chaos, src/verify, src/obs).
bool in_r2_scope_dir(const std::string& rel_path);

/// True when `rel_path` is inside the R8 shared-state scope
/// (src/sim, src/net, src/core, src/fabric).
bool in_r8_scope_dir(const std::string& rel_path);

/// True when `rel_path` is inside src/ (the R9 capture-safety scope).
bool in_r9_scope_dir(const std::string& rel_path);

/// R8 over the whole index: every mutable (non-const) static-storage
/// object that lacks a `srclint:shared-ok(<reason>)` annotation is a
/// finding. In tree mode the rule is scoped by in_r8_scope_dir; in
/// explicit-file mode every indexed object is checked. Suppression is
/// carried by the index (`SharedObject::annotated`), so findings here are
/// already post-suppression.
void run_shared_state_rule(const SymbolIndex& index, bool tree_mode,
                           std::vector<Finding>& out);

}  // namespace srclint
