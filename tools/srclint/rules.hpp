// srclint rules R1–R4 (token-level). R5 (header self-containment) lives in
// header_check.hpp because it shells out to the compiler.
//
// Rule catalog (suppression tag in brackets; suppress a site with
// `// srclint:<tag>-ok` on the same or preceding line, or a whole file
// with `// srclint:<tag>-ok-file`):
//   R1 [nondet]  no nondeterminism sources: std::rand/srand/random_device,
//                system_clock/steady_clock/high_resolution_clock, and free
//                calls to time()/clock()/gettimeofday()/clock_gettime().
//   R2 [ordered] no iteration (range-for / .begin()) over unordered
//                containers in simulation code — hash-table layout must
//                never feed event or arithmetic order.
//   R3 [obs]     observability macro arguments must be passive: no
//                assignments, ++/--, or calls to known mutating APIs.
//   R4 [seed]    no default-constructed RNG engines — every generator
//                threads an explicit seed.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "lexer.hpp"

namespace srclint {

struct Finding {
  std::string path;
  int line = 0;
  std::string rule;  ///< "R1".."R5"
  std::string message;
};

/// Which rules to run (default: all).
struct RuleSet {
  bool r1 = true, r2 = true, r3 = true, r4 = true, r5 = true;
  static RuleSet none() { return {false, false, false, false, false}; }
};

/// Pass 1 of R2: names declared (directly or through a type alias) as
/// std::unordered_{map,set,multimap,multiset} anywhere in the scanned
/// tree. Shared across files because members are declared in headers but
/// iterated in .cpp files.
std::unordered_set<std::string> collect_unordered_names(
    const std::vector<LexedFile>& files);

/// Run R1–R4 on one file. `in_r2_scope` says whether the file lives in a
/// simulation directory where R2 applies (always true in explicit-file
/// mode). Findings are appended in source order.
void run_token_rules(const LexedFile& file, const RuleSet& rules,
                     bool in_r2_scope,
                     const std::unordered_set<std::string>& unordered_names,
                     std::vector<Finding>& out);

/// True when `rel_path` is inside a directory where R2 applies
/// (src/sim, src/net, src/nvme, src/ssd, src/core, src/fabric).
bool in_r2_scope_dir(const std::string& rel_path);

}  // namespace srclint
