// srclint output backends and the baseline workflow.
//
//   - text:  `file:line: rule: message` (the classic format, stable for
//            the exact-output self-tests)
//   - json:  src-lint-v1 — machine-readable findings
//   - sarif: SARIF 2.1.0, suitable for GitHub code-scanning upload
//
// Baseline: a committed file of `path: rule: message` keys (line numbers
// deliberately dropped so the baseline survives unrelated edits). New
// rules land gated-on-new-findings: known findings listed in the baseline
// are filtered out, everything else still fails the build. The intent is
// incremental burn-down, never permanent exemption.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "index.hpp"
#include "rules.hpp"

namespace srclint {

enum class OutputFormat { kText, kJson, kSarif };

/// Parse "text" / "json" / "sarif"; false on anything else.
bool parse_format(const std::string& name, OutputFormat& out);

/// The baseline key of a finding: `path: rule: message` (no line).
std::string baseline_key(const Finding& finding);

/// A loaded baseline: a multiset of keys (duplicates count, so two known
/// findings with identical messages in one file need two entries).
class Baseline {
 public:
  /// Load from `path`. Blank lines and `#` comments are ignored.
  /// Returns false when the file cannot be read.
  static bool load(const std::string& path, Baseline& out);

  /// True (and consumes one occurrence) when `finding` is in the
  /// baseline. Call once per finding.
  bool match(const Finding& finding);

  /// Keys that were loaded but never matched — stale entries that should
  /// be pruned from the committed file.
  std::vector<std::string> unmatched() const;

 private:
  std::vector<std::pair<std::string, int>> entries_;  ///< key -> remaining
};

/// Serialize `findings` as a baseline file (sorted, deduplicated into
/// counted occurrences via repetition, with a self-describing header).
std::string render_baseline(const std::vector<Finding>& findings);

/// Render findings in the requested format. `root_hint` names the scanned
/// root for SARIF's originalUriBaseIds (empty in explicit-file mode).
std::string render_findings(const std::vector<Finding>& findings,
                            OutputFormat format, const std::string& root_hint);

/// src-shared-state-v1: the full R8 inventory (const and annotated
/// objects included) — the machine-readable input to the pod-scale
/// sharding refactor.
std::string render_shared_inventory(const SymbolIndex& index);

}  // namespace srclint
