#include "rules.hpp"

#include <array>

namespace srclint {
namespace {

const std::unordered_set<std::string> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

/// R1: banned wherever they appear (types / objects).
const std::unordered_set<std::string> kNondetTypes = {
    "random_device", "system_clock", "steady_clock", "high_resolution_clock"};

/// R1: banned when invoked as free functions.
const std::unordered_set<std::string> kNondetCalls = {
    "time", "clock", "gettimeofday", "clock_gettime", "timespec_get",
    "rand", "srand"};

/// Keywords that may directly precede a call expression; an identifier
/// before `time(` that is NOT one of these reads as a declaration
/// (`SimTime time(...)`) and is not flagged.
const std::unordered_set<std::string> kExprKeywords = {
    "return", "else", "do", "case", "goto", "co_return", "co_yield",
    "co_await", "throw"};

/// R3: member calls that mutate simulation state (scheduling, container
/// mutation, RNG consumption).
const std::unordered_set<std::string> kMutatingApis = {
    "schedule",     "schedule_at", "schedule_after", "cancel",
    "push_back",    "pop_front",   "pop_back",       "emplace",
    "emplace_back", "insert",      "erase",          "clear",
    "reset",        "resize",      "fork",           "next_u64",
    "uniform",      "uniform_index", "exponential",  "normal",
    "lognormal_mean_scv", "bernoulli", "set_tracing", "advance",
    "run",          "stop"};

const std::unordered_set<std::string> kMutatingPunct = {
    "=",  "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=", "<<=", ">>=", "++", "--"};

/// R4: RNG engine types that must never be default-constructed.
const std::unordered_set<std::string> kEngineTypes = {
    "Rng",          "mt19937",       "mt19937_64",   "minstd_rand",
    "minstd_rand0", "default_random_engine", "ranlux24", "ranlux48",
    "ranlux24_base", "ranlux48_base", "knuth_b"};

/// Suppression tag per rule id.
std::string rule_tag(const std::string& rule) {
  if (rule == "R1") return "nondet";
  if (rule == "R2") return "ordered";
  if (rule == "R3") return "obs";
  if (rule == "R4") return "seed";
  return "header";
}

struct Ctx {
  const LexedFile& file;
  std::vector<Finding>& out;

  void report(const std::string& rule, int line, std::string message) const {
    if (file.suppressions.active(rule_tag(rule), line)) return;
    out.push_back({file.path, line, rule, std::move(message)});
  }
};

bool is_ident(const Token& t) { return t.kind == TokKind::kIdentifier; }
bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

/// Starting at the index of a `<` token, return the index one past its
/// matching `>` (treating `>>` as two closers), or `npos` on imbalance.
std::size_t skip_template_args(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (toks[i].kind != TokKind::kPunct) continue;
    if (t == "<") depth += 1;
    else if (t == "<<") depth += 2;
    else if (t == ">") depth -= 1;
    else if (t == ">>") depth -= 2;
    else if (t == ";") return std::string::npos;  // gave up: not a template
    if (depth <= 0) return i + 1;
  }
  return std::string::npos;
}

/// Starting at the index of a `(` token, return the index of its matching
/// `)`, or `npos`.
std::size_t matching_paren(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (is_punct(toks[i], "(")) ++depth;
    else if (is_punct(toks[i], ")") && --depth == 0) return i;
  }
  return std::string::npos;
}

/// Name declared right after a type (skipping cv/ref/ptr tokens); empty
/// when the next tokens do not form a declaration.
std::string declared_name(const std::vector<Token>& toks, std::size_t i) {
  while (i < toks.size() &&
         (is_punct(toks[i], "&") || is_punct(toks[i], "*") ||
          (is_ident(toks[i]) && toks[i].text == "const"))) {
    ++i;
  }
  if (i < toks.size() && is_ident(toks[i])) return toks[i].text;
  return {};
}

// ---------------------------------------------------------------------- R1

void run_r1(const Ctx& ctx) {
  const auto& toks = ctx.file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i])) continue;
    const std::string& name = toks[i].text;
    const Token* prev = i > 0 ? &toks[i - 1] : nullptr;
    const Token* prev2 = i > 1 ? &toks[i - 2] : nullptr;

    // Member access is never the banned entity.
    if (prev && (is_punct(*prev, ".") || is_punct(*prev, "->"))) continue;
    // `ns::name` for a non-std namespace is someone else's symbol.
    if (prev && is_punct(*prev, "::") && prev2 && is_ident(*prev2) &&
        prev2->text != "std" && prev2->text != "chrono") {
      continue;
    }

    if (kNondetTypes.contains(name)) {
      ctx.report("R1", toks[i].line,
                 "nondeterminism source '" + name +
                     "' — simulation code must derive all randomness and "
                     "time from seeded Rng / sim clock");
      continue;
    }
    if (kNondetCalls.contains(name)) {
      const bool called = i + 1 < toks.size() && is_punct(toks[i + 1], "(");
      if (!called) continue;
      // An identifier immediately before reads as a declaration
      // (`SimTime time(...)`) unless it is an expression keyword.
      if (prev && is_ident(*prev) && !kExprKeywords.contains(prev->text)) {
        continue;
      }
      if (prev && (is_punct(*prev, ">") || is_punct(*prev, "*") ||
                   is_punct(*prev, "&") || is_punct(*prev, "~"))) {
        continue;  // declarator / destructor context
      }
      ctx.report("R1", toks[i].line,
                 "call to nondeterministic '" + name +
                     "()' — use the simulator clock or a seeded Rng");
    }
  }
}

// ---------------------------------------------------------------------- R2

void run_r2(const Ctx& ctx,
            const std::unordered_set<std::string>& unordered_names) {
  const auto& toks = ctx.file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    // Range-for whose range expression mentions an unordered container.
    if (is_ident(toks[i]) && toks[i].text == "for" && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "(")) {
      const std::size_t close = matching_paren(toks, i + 1);
      if (close == std::string::npos) continue;
      // Top-level `:` splits declaration from range expression.
      std::size_t colon = std::string::npos;
      int depth = 0;
      for (std::size_t k = i + 2; k < close; ++k) {
        if (is_punct(toks[k], "(")) ++depth;
        else if (is_punct(toks[k], ")")) --depth;
        else if (depth == 0 && is_punct(toks[k], ":")) { colon = k; break; }
        else if (depth == 0 && is_punct(toks[k], ";")) break;  // classic for
      }
      if (colon == std::string::npos) continue;
      for (std::size_t k = colon + 1; k < close; ++k) {
        if (is_ident(toks[k]) && unordered_names.contains(toks[k].text)) {
          ctx.report("R2", toks[i].line,
                     "iteration over unordered container '" + toks[k].text +
                         "' — hash-table order must not feed event or "
                         "arithmetic order (use std::map, a sorted "
                         "snapshot, or an insertion-order vector)");
          break;
        }
      }
      continue;
    }
    // Explicit iterator walk: `container.begin()`.
    if (is_ident(toks[i]) &&
        (toks[i].text == "begin" || toks[i].text == "cbegin" ||
         toks[i].text == "rbegin") &&
        i + 1 < toks.size() && is_punct(toks[i + 1], "(") && i >= 2 &&
        (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) &&
        is_ident(toks[i - 2]) && unordered_names.contains(toks[i - 2].text)) {
      ctx.report("R2", toks[i].line,
                 "iterator over unordered container '" + toks[i - 2].text +
                     "' — hash-table order must not feed event or "
                     "arithmetic order");
    }
  }
}

// ---------------------------------------------------------------------- R3

void run_r3(const Ctx& ctx) {
  const auto& toks = ctx.file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i]) || !toks[i].text.starts_with("SRC_OBS_")) continue;
    if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) continue;
    // The macro definition's parameter list is not an argument expression.
    if (i > 0 && is_ident(toks[i - 1]) && toks[i - 1].text == "define") continue;

    const std::size_t close = matching_paren(toks, i + 1);
    if (close == std::string::npos) continue;
    for (std::size_t k = i + 2; k < close; ++k) {
      const Token& t = toks[k];
      if (t.kind == TokKind::kPunct && kMutatingPunct.contains(t.text)) {
        ctx.report("R3", t.line,
                   "observability macro argument mutates state ('" + t.text +
                       "') — recording must be passive");
        continue;
      }
      if (is_ident(t) && kMutatingApis.contains(t.text) && k + 1 < close &&
          is_punct(toks[k + 1], "(") && k >= 1 &&
          (is_punct(toks[k - 1], ".") || is_punct(toks[k - 1], "->"))) {
        ctx.report("R3", t.line,
                   "observability macro argument calls mutating API '" +
                       t.text + "()' — recording must be passive");
      }
    }
  }
}

// ---------------------------------------------------------------------- R4

void run_r4(const Ctx& ctx) {
  const auto& toks = ctx.file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i]) || !kEngineTypes.contains(toks[i].text)) continue;
    const std::string& type = toks[i].text;
    // `#include <...>` tokens and qualified names are handled naturally:
    // we only look at what FOLLOWS the type name.
    if (i + 1 >= toks.size()) continue;

    // `T()` / `T{}`: seedless temporary.
    if ((is_punct(toks[i + 1], "(") && i + 2 < toks.size() &&
         is_punct(toks[i + 2], ")")) ||
        (is_punct(toks[i + 1], "{") && i + 2 < toks.size() &&
         is_punct(toks[i + 2], "}"))) {
      // `Rng() = delete;` style declarations are not constructions.
      if (i + 3 < toks.size() && is_punct(toks[i + 3], "=")) continue;
      ctx.report("R4", toks[i].line,
                 "default-constructed RNG engine '" + type +
                     "' — thread an explicit seed");
      continue;
    }
    // `T name;` / `T name{};`: seedless variable or member. Not applied
    // to the repo's own Rng: it has no default constructor, so a member
    // declaration `Rng rng_;` is legal and forces seeding in the ctor
    // init list — only std engines silently default-seed.
    if (type != "Rng" && is_ident(toks[i + 1]) && i + 2 < toks.size()) {
      const std::size_t after = i + 2;
      const bool bare_semi = is_punct(toks[after], ";");
      const bool empty_brace = is_punct(toks[after], "{") &&
                               after + 1 < toks.size() &&
                               is_punct(toks[after + 1], "}");
      if (bare_semi || empty_brace) {
        ctx.report("R4", toks[i].line,
                   "default-constructed RNG engine '" + type + " " +
                       toks[i + 1].text + "' — thread an explicit seed");
      }
    }
  }
}

}  // namespace

std::unordered_set<std::string> collect_unordered_names(
    const std::vector<LexedFile>& files) {
  // Pass A: type aliases of unordered containers (`using Flows =
  // std::unordered_map<...>;`).
  std::unordered_set<std::string> alias_types;
  for (const LexedFile& file : files) {
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!is_ident(toks[i]) ||
          (toks[i].text != "using" && toks[i].text != "typedef")) {
        continue;
      }
      // `using X = ...unordered_map...;`
      if (toks[i].text == "using" && is_ident(toks[i + 1]) &&
          is_punct(toks[i + 2], "=")) {
        for (std::size_t k = i + 3;
             k < toks.size() && !is_punct(toks[k], ";"); ++k) {
          if (is_ident(toks[k]) && kUnorderedTypes.contains(toks[k].text)) {
            alias_types.insert(toks[i + 1].text);
            break;
          }
        }
      }
    }
  }

  // Pass B: variables/members declared with an unordered type or alias.
  // (Named `collected`, not `names`: this file is lexed by its own pass A/B,
  // and an unordered variable called `names` here would taint every
  // range-for over a `names()` accessor in the scanned tree.)
  std::unordered_set<std::string> collected;
  for (const LexedFile& file : files) {
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!is_ident(toks[i])) continue;
      const bool direct = kUnorderedTypes.contains(toks[i].text);
      const bool via_alias = alias_types.contains(toks[i].text);
      if (!direct && !via_alias) continue;
      std::size_t after = i + 1;
      if (after < toks.size() && is_punct(toks[after], "<")) {
        after = skip_template_args(toks, after);
        if (after == std::string::npos) continue;
      } else if (direct) {
        continue;  // bare `unordered_map` without args: include line etc.
      }
      const std::string name = declared_name(toks, after);
      if (!name.empty()) collected.insert(name);
    }
  }
  return collected;
}

bool in_r2_scope_dir(const std::string& rel_path) {
  static constexpr const char* kScopes[] = {
      "src/sim/",    "src/net/",    "src/nvme/",     "src/ssd/",
      "src/core/",   "src/fabric/", "src/runner/",   "src/scenario/",
      "src/chaos/",  "src/verify/", "src/obs/"};
  for (const char* scope : kScopes) {
    if (rel_path.starts_with(scope)) return true;
  }
  return false;
}

void run_token_rules(const LexedFile& file, const RuleSet& rules,
                     bool in_r2_scope,
                     const std::unordered_set<std::string>& unordered_names,
                     std::vector<Finding>& out) {
  Ctx ctx{file, out};
  if (rules.r1) run_r1(ctx);
  if (rules.r2 && in_r2_scope) run_r2(ctx, unordered_names);
  if (rules.r3) run_r3(ctx);
  if (rules.r4) run_r4(ctx);
}

}  // namespace srclint
