#include "rules.hpp"

#include <array>

namespace srclint {
namespace {

const std::unordered_set<std::string> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

/// R1: banned wherever they appear (types / objects).
const std::unordered_set<std::string> kNondetTypes = {
    "random_device", "system_clock", "steady_clock", "high_resolution_clock"};

/// R1: banned when invoked as free functions.
const std::unordered_set<std::string> kNondetCalls = {
    "time", "clock", "gettimeofday", "clock_gettime", "timespec_get",
    "rand", "srand"};

/// Keywords that may directly precede a call expression; an identifier
/// before `time(` that is NOT one of these reads as a declaration
/// (`SimTime time(...)`) and is not flagged.
const std::unordered_set<std::string> kExprKeywords = {
    "return", "else", "do", "case", "goto", "co_return", "co_yield",
    "co_await", "throw"};

/// R3: member calls that mutate simulation state (scheduling, container
/// mutation, RNG consumption).
const std::unordered_set<std::string> kMutatingApis = {
    "schedule",     "schedule_at", "schedule_after", "cancel",
    "push_back",    "pop_front",   "pop_back",       "emplace",
    "emplace_back", "insert",      "erase",          "clear",
    "reset",        "resize",      "fork",           "next_u64",
    "uniform",      "uniform_index", "exponential",  "normal",
    "lognormal_mean_scv", "bernoulli", "set_tracing", "advance",
    "run",          "stop"};

const std::unordered_set<std::string> kMutatingPunct = {
    "=",  "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=", "<<=", ">>=", "++", "--"};

/// R4: RNG engine types that must never be default-constructed.
const std::unordered_set<std::string> kEngineTypes = {
    "Rng",          "mt19937",       "mt19937_64",   "minstd_rand",
    "minstd_rand0", "default_random_engine", "ranlux24", "ranlux48",
    "ranlux24_base", "ranlux48_base", "knuth_b"};

/// Suppression tag per rule id.
std::string rule_tag(const std::string& rule) {
  if (rule == "R1") return "nondet";
  if (rule == "R2") return "ordered";
  if (rule == "R3") return "obs";
  if (rule == "R4") return "seed";
  if (rule == "R6") return "units";
  if (rule == "R7") return "fp";
  if (rule == "R8") return "shared";
  if (rule == "R9") return "capture";
  return "header";
}

struct Ctx {
  const LexedFile& file;
  std::vector<Finding>& out;

  void report(const std::string& rule, int line, std::string message) const {
    if (file.suppressions.active(rule_tag(rule), line)) return;
    out.push_back({file.path, line, rule, std::move(message)});
  }
};

bool is_ident(const Token& t) { return t.kind == TokKind::kIdentifier; }
bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}
bool ident_text_is(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdentifier && t.text == text;
}

/// Starting at the index of a `<` token, return the index one past its
/// matching `>` (treating `>>` as two closers), or `npos` on imbalance.
std::size_t skip_template_args(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (toks[i].kind != TokKind::kPunct) continue;
    if (t == "<") depth += 1;
    else if (t == "<<") depth += 2;
    else if (t == ">") depth -= 1;
    else if (t == ">>") depth -= 2;
    else if (t == ";") return std::string::npos;  // gave up: not a template
    if (depth <= 0) return i + 1;
  }
  return std::string::npos;
}

/// Starting at the index of a `(` token, return the index of its matching
/// `)`, or `npos`.
std::size_t matching_paren(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (is_punct(toks[i], "(")) ++depth;
    else if (is_punct(toks[i], ")") && --depth == 0) return i;
  }
  return std::string::npos;
}

/// Name declared right after a type (skipping cv/ref/ptr tokens); empty
/// when the next tokens do not form a declaration.
std::string declared_name(const std::vector<Token>& toks, std::size_t i) {
  while (i < toks.size() &&
         (is_punct(toks[i], "&") || is_punct(toks[i], "*") ||
          (is_ident(toks[i]) && toks[i].text == "const"))) {
    ++i;
  }
  if (i < toks.size() && is_ident(toks[i])) return toks[i].text;
  return {};
}

// ---------------------------------------------------------------------- R1

void run_r1(const Ctx& ctx) {
  const auto& toks = ctx.file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i])) continue;
    const std::string& name = toks[i].text;
    const Token* prev = i > 0 ? &toks[i - 1] : nullptr;
    const Token* prev2 = i > 1 ? &toks[i - 2] : nullptr;

    // Member access is never the banned entity.
    if (prev && (is_punct(*prev, ".") || is_punct(*prev, "->"))) continue;
    // `ns::name` for a non-std namespace is someone else's symbol.
    if (prev && is_punct(*prev, "::") && prev2 && is_ident(*prev2) &&
        prev2->text != "std" && prev2->text != "chrono") {
      continue;
    }

    if (kNondetTypes.contains(name)) {
      ctx.report("R1", toks[i].line,
                 "nondeterminism source '" + name +
                     "' — simulation code must derive all randomness and "
                     "time from seeded Rng / sim clock");
      continue;
    }
    if (kNondetCalls.contains(name)) {
      const bool called = i + 1 < toks.size() && is_punct(toks[i + 1], "(");
      if (!called) continue;
      // An identifier immediately before reads as a declaration
      // (`SimTime time(...)`) unless it is an expression keyword.
      if (prev && is_ident(*prev) && !kExprKeywords.contains(prev->text)) {
        continue;
      }
      if (prev && (is_punct(*prev, ">") || is_punct(*prev, "*") ||
                   is_punct(*prev, "&") || is_punct(*prev, "~"))) {
        continue;  // declarator / destructor context
      }
      ctx.report("R1", toks[i].line,
                 "call to nondeterministic '" + name +
                     "()' — use the simulator clock or a seeded Rng");
    }
  }
}

// ---------------------------------------------------------------------- R2

void run_r2(const Ctx& ctx,
            const std::unordered_set<std::string>& unordered_names) {
  const auto& toks = ctx.file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    // Range-for whose range expression mentions an unordered container.
    if (is_ident(toks[i]) && toks[i].text == "for" && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "(")) {
      const std::size_t close = matching_paren(toks, i + 1);
      if (close == std::string::npos) continue;
      // Top-level `:` splits declaration from range expression.
      std::size_t colon = std::string::npos;
      int depth = 0;
      for (std::size_t k = i + 2; k < close; ++k) {
        if (is_punct(toks[k], "(")) ++depth;
        else if (is_punct(toks[k], ")")) --depth;
        else if (depth == 0 && is_punct(toks[k], ":")) { colon = k; break; }
        else if (depth == 0 && is_punct(toks[k], ";")) break;  // classic for
      }
      if (colon == std::string::npos) continue;
      for (std::size_t k = colon + 1; k < close; ++k) {
        if (is_ident(toks[k]) && unordered_names.contains(toks[k].text)) {
          ctx.report("R2", toks[i].line,
                     "iteration over unordered container '" + toks[k].text +
                         "' — hash-table order must not feed event or "
                         "arithmetic order (use std::map, a sorted "
                         "snapshot, or an insertion-order vector)");
          break;
        }
      }
      continue;
    }
    // Explicit iterator walk: `container.begin()`.
    if (is_ident(toks[i]) &&
        (toks[i].text == "begin" || toks[i].text == "cbegin" ||
         toks[i].text == "rbegin") &&
        i + 1 < toks.size() && is_punct(toks[i + 1], "(") && i >= 2 &&
        (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) &&
        is_ident(toks[i - 2]) && unordered_names.contains(toks[i - 2].text)) {
      ctx.report("R2", toks[i].line,
                 "iterator over unordered container '" + toks[i - 2].text +
                     "' — hash-table order must not feed event or "
                     "arithmetic order");
    }
  }
}

// ---------------------------------------------------------------------- R3

void run_r3(const Ctx& ctx) {
  const auto& toks = ctx.file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i]) || !toks[i].text.starts_with("SRC_OBS_")) continue;
    if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) continue;
    // The macro definition's parameter list is not an argument expression.
    if (i > 0 && is_ident(toks[i - 1]) && toks[i - 1].text == "define") continue;

    const std::size_t close = matching_paren(toks, i + 1);
    if (close == std::string::npos) continue;
    for (std::size_t k = i + 2; k < close; ++k) {
      const Token& t = toks[k];
      if (t.kind == TokKind::kPunct && kMutatingPunct.contains(t.text)) {
        ctx.report("R3", t.line,
                   "observability macro argument mutates state ('" + t.text +
                       "') — recording must be passive");
        continue;
      }
      if (is_ident(t) && kMutatingApis.contains(t.text) && k + 1 < close &&
          is_punct(toks[k + 1], "(") && k >= 1 &&
          (is_punct(toks[k - 1], ".") || is_punct(toks[k - 1], "->"))) {
        ctx.report("R3", t.line,
                   "observability macro argument calls mutating API '" +
                       t.text + "()' — recording must be passive");
      }
    }
  }
}

// ---------------------------------------------------------------------- R4

void run_r4(const Ctx& ctx) {
  const auto& toks = ctx.file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i]) || !kEngineTypes.contains(toks[i].text)) continue;
    const std::string& type = toks[i].text;
    // `#include <...>` tokens and qualified names are handled naturally:
    // we only look at what FOLLOWS the type name.
    if (i + 1 >= toks.size()) continue;

    // `T()` / `T{}`: seedless temporary.
    if ((is_punct(toks[i + 1], "(") && i + 2 < toks.size() &&
         is_punct(toks[i + 2], ")")) ||
        (is_punct(toks[i + 1], "{") && i + 2 < toks.size() &&
         is_punct(toks[i + 2], "}"))) {
      // `Rng() = delete;` style declarations are not constructions.
      if (i + 3 < toks.size() && is_punct(toks[i + 3], "=")) continue;
      ctx.report("R4", toks[i].line,
                 "default-constructed RNG engine '" + type +
                     "' — thread an explicit seed");
      continue;
    }
    // `T name;` / `T name{};`: seedless variable or member. Not applied
    // to the repo's own Rng: it has no default constructor, so a member
    // declaration `Rng rng_;` is legal and forces seeding in the ctor
    // init list — only std engines silently default-seed.
    if (type != "Rng" && is_ident(toks[i + 1]) && i + 2 < toks.size()) {
      const std::size_t after = i + 2;
      const bool bare_semi = is_punct(toks[after], ";");
      const bool empty_brace = is_punct(toks[after], "{") &&
                               after + 1 < toks.size() &&
                               is_punct(toks[after + 1], "}");
      if (bare_semi || empty_brace) {
        ctx.report("R4", toks[i].line,
                   "default-constructed RNG engine '" + type + " " +
                       toks[i + 1].text + "' — thread an explicit seed");
      }
    }
  }
}

// ---------------------------------------------------------------------- R6

/// Recognized unit suffixes (longest first). The returned unit drops the
/// leading underscore: "ns", "us", "ms", "bytes_per_sec", "gbps", "mbps".
std::string unit_suffix(const std::string& name) {
  static constexpr std::string_view kSuffixes[] = {
      "_bytes_per_sec", "_gbps", "_mbps", "_ns", "_us", "_ms"};
  for (const std::string_view s : kSuffixes) {
    if (name.size() > s.size() && name.ends_with(s)) {
      return std::string(s.substr(1));
    }
  }
  return {};
}

/// Index of the `(` matching the `)` at `close`, scanning backward.
std::size_t matching_open_paren(const std::vector<Token>& toks,
                                std::size_t close) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (is_punct(toks[i], ")")) ++depth;
    else if (is_punct(toks[i], "(") && --depth == 0) return i;
  }
  return std::string::npos;
}

std::size_t matching_open_bracket(const std::vector<Token>& toks,
                                  std::size_t close) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (is_punct(toks[i], "]")) ++depth;
    else if (is_punct(toks[i], "[") && --depth == 0) return i;
  }
  return std::string::npos;
}

/// Unit of the operand ending just before `op_idx` (exclusive), walking a
/// postfix chain leftward: `a.b_us`, `f_ns(...)`, `xs_us[i]`. Empty when
/// the operand's unit cannot be named.
struct Operand {
  std::string unit;
  std::string name;  ///< the unit-carrying identifier, for the message
};

Operand left_operand(const std::vector<Token>& toks, std::size_t op_idx) {
  if (op_idx == 0) return {};
  std::size_t i = op_idx - 1;
  if (is_punct(toks[i], ")")) {
    // `f(...)` — the callee's suffix names the result's unit (`as_mbps()`).
    const std::size_t open = matching_open_paren(toks, i);
    if (open == std::string::npos || open == 0) return {};
    if (!is_ident(toks[open - 1])) return {};
    return {unit_suffix(toks[open - 1].text), toks[open - 1].text};
  }
  if (is_punct(toks[i], "]")) {
    const std::size_t open = matching_open_bracket(toks, i);
    if (open == std::string::npos || open == 0) return {};
    if (!is_ident(toks[open - 1])) return {};
    return {unit_suffix(toks[open - 1].text), toks[open - 1].text};
  }
  if (is_ident(toks[i])) {
    // A multiplicative neighbor converts the unit (`t_us * 1000` is no
    // longer microseconds), so the name stops naming the value's unit.
    if (i > 0 && (is_punct(toks[i - 1], "*") || is_punct(toks[i - 1], "/") ||
                  is_punct(toks[i - 1], "%"))) {
      return {};
    }
    return {unit_suffix(toks[i].text), toks[i].text};
  }
  return {};
}

Operand right_operand(const std::vector<Token>& toks, std::size_t op_idx) {
  std::size_t i = op_idx + 1;
  if (i >= toks.size() || !is_ident(toks[i])) return {};
  // Walk the member chain: the unit carrier is the last name.
  std::size_t last = i;
  while (last + 2 < toks.size() &&
         (is_punct(toks[last + 1], ".") || is_punct(toks[last + 1], "->")) &&
         is_ident(toks[last + 2])) {
    last += 2;
  }
  // `x_ns = t_us * 1000` converts explicitly — the product's unit is not
  // the named operand's unit, so don't claim a mismatch.
  if (last + 1 < toks.size() &&
      (is_punct(toks[last + 1], "*") || is_punct(toks[last + 1], "/") ||
       is_punct(toks[last + 1], "%"))) {
    return {};
  }
  return {unit_suffix(toks[last].text), toks[last].text};
}

void run_r6(const Ctx& ctx, const std::vector<Token>& toks) {
  static const std::unordered_set<std::string> kCheckedOps = {
      "+", "-", "+=", "-=", "=", "<", ">", "<=", ">=", "==", "!="};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct || !kCheckedOps.contains(toks[i].text)) {
      continue;
    }
    const Operand lhs = left_operand(toks, i);
    if (lhs.unit.empty()) continue;
    const Operand rhs = right_operand(toks, i);
    if (rhs.unit.empty() || lhs.unit == rhs.unit) continue;
    ctx.report("R6", toks[i].line,
               "unit mismatch: '" + lhs.name + "' (" + lhs.unit + ") " +
                   toks[i].text + " '" + rhs.name + "' (" + rhs.unit +
                   ") mixes units — convert explicitly before combining");
  }
}

// ---------------------------------------------------------------------- R7

bool is_float_literal(const Token& t) {
  if (t.kind != TokKind::kNumber) return false;
  const std::string& s = t.text;
  if (s.starts_with("0x") || s.starts_with("0X")) return false;
  return s.find('.') != std::string::npos ||
         s.find('e') != std::string::npos || s.find('E') != std::string::npos;
}

void run_r7(const Ctx& ctx, const std::vector<Token>& toks,
            const SymbolIndex& index) {
  // Float-typed names visible to this file: cross-TU members plus names
  // declared float in this file (locals, parameters, loop variables).
  std::unordered_set<std::string> floats = index.float_names;
  for (const std::string& name : collect_float_names(toks)) {
    floats.insert(name);
  }
  auto is_float_operand = [&](const Token& t) {
    return is_float_literal(t) || (is_ident(t) && floats.contains(t.text));
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];

    // ==/!= on floating-point values.
    if (t.kind == TokKind::kPunct && (t.text == "==" || t.text == "!=")) {
      const Token* prev = i > 0 ? &toks[i - 1] : nullptr;
      std::size_t r = i + 1;
      // Unary minus before a literal: `!= -1.0`.
      if (r < toks.size() && is_punct(toks[r], "-")) ++r;
      const Token* next = r < toks.size() ? &toks[r] : nullptr;
      if ((prev && is_float_operand(*prev)) ||
          (next && is_float_operand(*next))) {
        ctx.report("R7", t.line,
                   "'" + t.text +
                       "' on floating-point values — exact FP comparison is "
                       "representation-sensitive; compare with a tolerance "
                       "or justify with srclint:fp-ok(<reason>)");
      }
      continue;
    }

    if (!is_ident(t)) continue;

    // std::accumulate / std::reduce over floating-point values.
    if ((t.text == "accumulate" || t.text == "reduce") &&
        i + 1 < toks.size() && is_punct(toks[i + 1], "(")) {
      const std::size_t close = matching_paren(toks, i + 1);
      if (close == std::string::npos) continue;
      bool floaty = false;
      for (std::size_t k = i + 2; k < close && !floaty; ++k) {
        floaty = is_float_operand(toks[k]) || ident_text_is(toks[k], "double") ||
                 ident_text_is(toks[k], "float");
      }
      if (floaty) {
        ctx.report("R7", t.line,
                   "std::" + t.text +
                       " over floating-point values — FP addition is not "
                       "associative, so the reduction order is observable; "
                       "write an explicit loop over a pinned order and "
                       "justify with srclint:fp-ok(<reason>)");
      }
      continue;
    }

    // Range-for body accumulating into a float: `for (... : xs) sum += x;`
    if (t.text == "for" && i + 1 < toks.size() && is_punct(toks[i + 1], "(")) {
      const std::size_t close = matching_paren(toks, i + 1);
      if (close == std::string::npos) continue;
      // Top-level `:` inside the parens marks a range-for.
      bool range_for = false;
      int depth = 0;
      for (std::size_t k = i + 2; k < close; ++k) {
        if (is_punct(toks[k], "(")) ++depth;
        else if (is_punct(toks[k], ")")) --depth;
        else if (depth == 0 && is_punct(toks[k], ";")) break;
        else if (depth == 0 && is_punct(toks[k], ":")) {
          range_for = true;
          break;
        }
      }
      if (!range_for || close + 1 >= toks.size()) continue;
      // Body: braced block or single statement.
      std::size_t body_begin = close + 1;
      std::size_t body_end;
      if (is_punct(toks[body_begin], "{")) {
        int braces = 0;
        body_end = body_begin;
        for (std::size_t k = body_begin; k < toks.size(); ++k) {
          if (is_punct(toks[k], "{")) ++braces;
          else if (is_punct(toks[k], "}") && --braces == 0) {
            body_end = k;
            break;
          }
        }
      } else {
        body_end = body_begin;
        while (body_end < toks.size() && !is_punct(toks[body_end], ";")) {
          ++body_end;
        }
      }
      for (std::size_t k = body_begin; k + 1 < body_end; ++k) {
        if (is_ident(toks[k]) && floats.contains(toks[k].text) &&
            toks[k + 1].kind == TokKind::kPunct &&
            (toks[k + 1].text == "+=" || toks[k + 1].text == "-=" ||
             toks[k + 1].text == "*=")) {
          ctx.report("R7", toks[k].line,
                     "order-sensitive floating-point reduction '" +
                         toks[k].text + " " + toks[k + 1].text +
                         "' inside a range-for — the iteration order feeds "
                         "the FP result; pin it and justify with "
                         "srclint:fp-ok(<reason>)");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------- R9

void run_r9(const Ctx& ctx, const std::vector<Token>& toks,
            const SymbolIndex& index) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i]) ||
        !index.scheduler_functions.contains(toks[i].text) ||
        !is_punct(toks[i + 1], "(")) {
      continue;
    }
    const std::size_t close = matching_paren(toks, i + 1);
    if (close == std::string::npos) continue;
    // Direct lambda arguments: a `[` at paren depth 1 that is not an
    // attribute (`[[`) or a subscript (previous token is an operand).
    int depth = 1;
    for (std::size_t k = i + 2; k < close; ++k) {
      if (is_punct(toks[k], "(")) { ++depth; continue; }
      if (is_punct(toks[k], ")")) { --depth; continue; }
      if (depth != 1 || !is_punct(toks[k], "[")) continue;
      if (k + 1 < close && is_punct(toks[k + 1], "[")) { ++k; continue; }
      const Token& before = toks[k - 1];
      const bool subscript = before.kind == TokKind::kIdentifier ||
                             before.kind == TokKind::kNumber ||
                             is_punct(before, ")") || is_punct(before, "]");
      if (subscript) continue;
      const std::size_t cap_close = [&] {
        int d = 0;
        for (std::size_t m = k; m < close; ++m) {
          if (is_punct(toks[m], "[")) ++d;
          else if (is_punct(toks[m], "]") && --d == 0) return m;
        }
        return close;
      }();
      bool by_ref = false;
      bool raw_this = false;
      for (std::size_t m = k + 1; m < cap_close; ++m) {
        if (is_punct(toks[m], "&") || is_punct(toks[m], "&&")) by_ref = true;
        if (is_ident(toks[m]) && toks[m].text == "this" &&
            !(m > 0 && is_punct(toks[m - 1], "*"))) {
          raw_this = true;
        }
      }
      if (!by_ref && !raw_this) { k = cap_close; continue; }
      std::string what;
      if (by_ref && raw_this) what = "captures by reference and raw 'this'";
      else if (by_ref) what = "captures by reference";
      else what = "captures raw 'this'";
      ctx.report("R9", toks[k].line,
                 "lambda passed to scheduler '" + toks[i].text + "' " + what +
                     " — the callback runs later, from the event loop, and "
                     "may outlive the captured frame; capture by value or "
                     "justify the lifetime with srclint:capture-ok(<reason>)");
      k = cap_close;
    }
  }
}

}  // namespace

std::unordered_set<std::string> collect_unordered_names(
    const std::vector<LexedFile>& files) {
  // Pass A: type aliases of unordered containers (`using Flows =
  // std::unordered_map<...>;`).
  std::unordered_set<std::string> alias_types;
  for (const LexedFile& file : files) {
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!is_ident(toks[i]) ||
          (toks[i].text != "using" && toks[i].text != "typedef")) {
        continue;
      }
      // `using X = ...unordered_map...;`
      if (toks[i].text == "using" && is_ident(toks[i + 1]) &&
          is_punct(toks[i + 2], "=")) {
        for (std::size_t k = i + 3;
             k < toks.size() && !is_punct(toks[k], ";"); ++k) {
          if (is_ident(toks[k]) && kUnorderedTypes.contains(toks[k].text)) {
            alias_types.insert(toks[i + 1].text);
            break;
          }
        }
      }
    }
  }

  // Pass B: variables/members declared with an unordered type or alias.
  // (Named `collected`, not `names`: this file is lexed by its own pass A/B,
  // and an unordered variable called `names` here would taint every
  // range-for over a `names()` accessor in the scanned tree.)
  std::unordered_set<std::string> collected;
  for (const LexedFile& file : files) {
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!is_ident(toks[i])) continue;
      const bool direct = kUnorderedTypes.contains(toks[i].text);
      const bool via_alias = alias_types.contains(toks[i].text);
      if (!direct && !via_alias) continue;
      std::size_t after = i + 1;
      if (after < toks.size() && is_punct(toks[after], "<")) {
        after = skip_template_args(toks, after);
        if (after == std::string::npos) continue;
      } else if (direct) {
        continue;  // bare `unordered_map` without args: include line etc.
      }
      const std::string name = declared_name(toks, after);
      if (!name.empty()) collected.insert(name);
    }
  }
  return collected;
}

bool in_r2_scope_dir(const std::string& rel_path) {
  static constexpr const char* kScopes[] = {
      "src/sim/",    "src/net/",    "src/nvme/",     "src/ssd/",
      "src/core/",   "src/fabric/", "src/runner/",   "src/scenario/",
      "src/chaos/",  "src/verify/", "src/obs/",      "src/common/"};
  for (const char* scope : kScopes) {
    if (rel_path.starts_with(scope)) return true;
  }
  return false;
}

bool in_r8_scope_dir(const std::string& rel_path) {
  static constexpr const char* kScopes[] = {"src/sim/", "src/net/",
                                            "src/core/", "src/fabric/",
                                            "src/common/"};
  for (const char* scope : kScopes) {
    if (rel_path.starts_with(scope)) return true;
  }
  return false;
}

bool in_r9_scope_dir(const std::string& rel_path) {
  return rel_path.starts_with("src/");
}

void run_token_rules(const LexedFile& file, const RuleSet& rules,
                     const RuleScope& scope,
                     const std::unordered_set<std::string>& unordered_names,
                     const SymbolIndex& index, std::vector<Finding>& out) {
  Ctx ctx{file, out};
  if (rules.r1) run_r1(ctx);
  if (rules.r2 && scope.r2) run_r2(ctx, unordered_names);
  if (rules.r3) run_r3(ctx);
  if (rules.r4) run_r4(ctx);
  if (rules.r6 || (rules.r7 && scope.r7) || (rules.r9 && scope.r9)) {
    // The semantic rules work on a preprocessor-free stream so `#include`
    // and macro-definition lines never read as declarations or operands.
    const std::vector<Token> stripped = strip_preprocessor(file.tokens);
    if (rules.r6) run_r6(ctx, stripped);
    if (rules.r7 && scope.r7) run_r7(ctx, stripped, index);
    if (rules.r9 && scope.r9) run_r9(ctx, stripped, index);
  }
}

void run_shared_state_rule(const SymbolIndex& index, bool tree_mode,
                           std::vector<Finding>& out) {
  for (const SharedObject& obj : index.shared_objects) {
    if (obj.is_const || obj.annotated) continue;
    if (tree_mode && !in_r8_scope_dir(obj.path)) continue;
    out.push_back(
        {obj.path, obj.line, "R8",
         std::string("mutable ") + storage_name(obj.storage) + " state '" +
             obj.qualified +
             "' — hidden shared mutable state blocks per-worker event-lane "
             "sharding; make it per-instance, or annotate with "
             "srclint:shared-ok(<reason>) to add it to the inventory"});
  }
}

}  // namespace srclint
