// srcctl — command-line front end for the SRC simulator library.
//
//   srcctl sweep       fig-5-style weight-ratio sweep on one workload
//   srcctl experiment  DCQCN-only vs DCQCN-SRC on an evaluation preset
//   srcctl trace       run a preset with tracing on; emit Chrome trace JSON
//   srcctl tpm         train a throughput prediction model and inspect it
//   srcctl trace-gen   generate a CSV block trace (micro / vdi / cbs)
//   srcctl replay      replay a CSV trace against a simulated SSD
//   srcctl faults      canned fault-injection scenario with timeout/retry
//   srcctl benchcheck  validate BENCH_*.json files against src-bench-v1
//
// Run `srcctl <command> --help` for per-command flags.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/presets.hpp"
#include "core/standalone.hpp"
#include "fault/fault_injector.hpp"
#include "obs/obs.hpp"
#include "workload/trace_io.hpp"

using namespace src;

namespace {

/// Tiny --flag=value / --flag value parser.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string token = argv[i];
      if (token == "-o") {
        token = "--out";  // conventional short form for output files
      }
      if (token.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument '%s'\n", token.c_str());
        std::exit(2);
      }
      token = token.substr(2);
      const auto eq = token.find('=');
      if (eq != std::string::npos) {
        values_[token.substr(0, eq)] = token.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[token] = argv[++i];
      } else {
        values_[token] = "true";
      }
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoull(it->second);
  }
  bool has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

int cmd_sweep(const Args& args) {
  if (args.has("help")) {
    std::puts("srcctl sweep [--ssd SSD-A] [--iat 15] [--size-kb 32] "
              "[--count 6000] [--seed 7]");
    return 0;
  }
  const auto config = ssd::config_by_name(args.get("ssd", "SSD-A"));
  const double iat = args.get_double("iat", 15.0);
  const double size_kb = args.get_double("size-kb", 32.0);
  const auto trace = workload::generate_micro(
      workload::symmetric_micro(iat, size_kb * 1024,
                                args.get_u64("count", 6000)),
      args.get_u64("seed", 7));

  common::TextTable table({"w", "read Gbps", "write Gbps", "aggregate"});
  for (const std::uint32_t w : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u}) {
    core::StandaloneOptions options;
    options.weight_ratio = w;
    options.horizon = core::arrival_horizon(trace);
    const auto result = core::run_standalone(config, trace, options);
    table.add_row({std::to_string(w) + ":1",
                   common::fmt(result.read_rate.as_gbps()),
                   common::fmt(result.write_rate.as_gbps()),
                   common::fmt(result.aggregate_rate().as_gbps())});
  }
  table.print(std::cout);
  return 0;
}

/// Write `text` to `path`, exiting with a message on failure.
void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  out << text << '\n';
}

int cmd_experiment(const Args& args) {
  if (args.has("help")) {
    std::puts("srcctl experiment [--preset vdi|light|moderate|heavy|incast]\n"
              "                  [--targets 2] [--initiators 1] [--seed 99]\n"
              "                  [--model file.tpm] [--metrics-out metrics.json]");
    return 0;
  }
  const std::string preset = args.get("preset", "vdi");
  core::Tpm tpm;
  if (args.has("model")) {
    tpm = core::Tpm::load_file(args.get("model", ""));
    std::printf("loaded TPM from %s\n", args.get("model", "").c_str());
  } else {
    std::printf("training TPM for SSD-A (use --model file.tpm to skip)...\n");
    tpm = core::train_default_tpm(ssd::ssd_a());
  }

  auto build = [&](bool use_src) -> core::ExperimentConfig {
    const std::uint64_t seed = args.get_u64("seed", 99);
    const core::Tpm* model = use_src ? &tpm : nullptr;
    if (preset == "vdi") return core::vdi_experiment(use_src, model, seed);
    if (preset == "light")
      return core::intensity_experiment(core::Intensity::kLight, use_src, model, seed);
    if (preset == "moderate")
      return core::intensity_experiment(core::Intensity::kModerate, use_src, model, seed);
    if (preset == "heavy")
      return core::intensity_experiment(core::Intensity::kHeavy, use_src, model, seed);
    if (preset == "incast")
      return core::incast_experiment(args.get_u64("targets", 2),
                                     args.get_u64("initiators", 1), use_src,
                                     model, seed);
    std::fprintf(stderr, "unknown preset '%s'\n", preset.c_str());
    std::exit(2);
  };

  // Metrics observatories (tracing off: the counters are what we export).
  obs::ObsConfig obs_config;
  obs_config.tracing = false;
  obs::Observatory only_obs(obs_config);
  obs::Observatory src_obs(obs_config);

  auto only_config = build(false);
  auto src_config = build(true);
  if (args.has("metrics-out")) {
    only_config.observatory = &only_obs;
    src_config.observatory = &src_obs;
  }
  const auto only = core::run_experiment(only_config);
  const auto with_src = core::run_experiment(src_config);

  if (args.has("metrics-out")) {
    obs::Json combined = obs::Json::Object{};
    combined.set("dcqcn_only", obs::Json::parse(only_obs.metrics_json()));
    combined.set("dcqcn_src", obs::Json::parse(src_obs.metrics_json()));
    const std::string path = args.get("metrics-out", "");
    write_text_file(path, combined.dump(2));
    std::printf("metrics written to %s\n", path.c_str());
  }

  common::TextTable table({"Mode", "read", "write", "aggregate", "signals"});
  auto row = [&](const char* name, const core::ExperimentResult& r) {
    table.add_row({name, common::fmt(r.read_rate.as_gbps()),
                   common::fmt(r.write_rate.as_gbps()),
                   common::fmt(r.aggregate_rate().as_gbps()),
                   std::to_string(r.pause_timeline.total())});
  };
  row("DCQCN-only", only);
  row("DCQCN-SRC", with_src);
  table.print(std::cout);
  const double gain = (with_src.aggregate_rate().as_bytes_per_second() /
                           only.aggregate_rate().as_bytes_per_second() -
                       1.0) * 100.0;
  std::printf("aggregate improvement: %+.0f%% (rates in Gbps)\n", gain);

  // Robustness counters: all zero on a healthy run, so only print when the
  // fault/retry machinery actually did something.
  auto robustness = [](const char* name, const core::ExperimentResult& r) {
    const std::uint64_t activity = r.retries + r.timeouts + r.error_completions +
                                   r.reads_failed + r.writes_failed +
                                   r.errors_returned + r.rerouted_requests +
                                   r.signals_suppressed +
                                   r.controller_stats.invalid_demand_events +
                                   r.controller_stats.rejected_predictions +
                                   r.controller_stats.watchdog_decays;
    if (activity == 0) return;
    std::printf("%s robustness: %llu retries, %llu timeouts, %llu error "
                "completions, %llu failed, %llu rerouted, %llu signals lost, "
                "%llu bad demands, %llu bad predictions, %llu watchdog decays\n",
                name, static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.timeouts),
                static_cast<unsigned long long>(r.error_completions),
                static_cast<unsigned long long>(r.reads_failed + r.writes_failed),
                static_cast<unsigned long long>(r.rerouted_requests),
                static_cast<unsigned long long>(r.signals_suppressed),
                static_cast<unsigned long long>(r.controller_stats.invalid_demand_events),
                static_cast<unsigned long long>(r.controller_stats.rejected_predictions),
                static_cast<unsigned long long>(r.controller_stats.watchdog_decays));
  };
  robustness("DCQCN-only", only);
  robustness("DCQCN-SRC", with_src);
  return 0;
}

int cmd_trace(const Args& args) {
  if (args.has("help")) {
    std::puts("srcctl trace --preset fig7|fig9|fig10-light|fig10-moderate|\n"
              "                      fig10-heavy|table4\n"
              "             [-o|--out trace.json] [--metrics-out metrics.json]\n"
              "             [--model file.tpm] [--capacity 65536]\n"
              "\n"
              "Runs the preset with event tracing enabled and writes a Chrome\n"
              "trace_event JSON (load it at https://ui.perfetto.dev).");
    return 0;
  }
  const std::string preset = args.get("preset", "fig9");
  const std::string out = args.get("out", "trace.json");

  core::Tpm tpm;
  const core::Tpm* model = nullptr;
  if (preset != "fig7") {  // every other preset runs SRC and needs a TPM
    if (args.has("model")) {
      tpm = core::Tpm::load_file(args.get("model", ""));
      std::printf("loaded TPM from %s\n", args.get("model", "").c_str());
    } else {
      std::printf("training TPM for SSD-A (use --model file.tpm to skip)...\n");
      tpm = core::train_default_tpm(ssd::ssd_a());
    }
    model = &tpm;
  }

  core::ExperimentConfig config;
  try {
    config = core::preset_by_name(preset, model);
  } catch (const std::invalid_argument& err) {
    std::fprintf(stderr, "%s\n", err.what());
    return 2;
  }

  obs::ObsConfig obs_config;
  obs_config.tracing = true;
  obs_config.trace_capacity = args.get_u64("capacity", obs_config.trace_capacity);
  obs::Observatory observatory(obs_config);
  config.observatory = &observatory;

  const auto result = core::run_experiment(config);

  write_text_file(out, observatory.trace_json());
  std::printf("%s: read %.2f Gbps, write %.2f Gbps, %llu pauses, final w=%u\n",
              preset.c_str(), result.read_rate.as_gbps(),
              result.write_rate.as_gbps(),
              static_cast<unsigned long long>(result.total_pauses),
              result.final_weight_ratio());
  std::printf("trace: %zu events kept (%llu recorded, %llu dropped) -> %s\n",
              observatory.tracer().size(),
              static_cast<unsigned long long>(observatory.tracer().recorded()),
              static_cast<unsigned long long>(observatory.tracer().dropped()),
              out.c_str());
  if (args.has("metrics-out")) {
    const std::string metrics_path = args.get("metrics-out", "");
    write_text_file(metrics_path, observatory.metrics_json());
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}

int cmd_faults(const Args& args) {
  if (args.has("help")) {
    std::puts("srcctl faults [--seed 42] [--requests 2000] [--devices 4]\n"
              "              [--drop-prob 0.3] [--drop-start-ms 50] [--drop-end-ms 100]\n"
              "              [--outage-device 1] [--outage-start-ms 80] [--outage-end-ms 140]\n"
              "              [--max-retries 10] [--no-retry]");
    return 0;
  }
  sim::Simulator sim;
  net::Network network(sim, net::NetConfig{});
  auto topo = net::make_star(network, 2, common::Rate::gbps(10.0),
                             common::kMicrosecond);
  fabric::FabricContext context;
  fabric::Initiator initiator(network, topo.hosts[0], context);
  fabric::TargetConfig target_config;
  target_config.device_count = args.get_u64("devices", 4);
  fabric::Target target(network, topo.hosts[1], context, target_config);

  if (!args.has("no-retry")) {
    fabric::RetryPolicy policy;
    policy.enabled = true;
    policy.base_timeout = 2 * common::kMillisecond;
    policy.max_timeout = 16 * common::kMillisecond;
    policy.max_retries = static_cast<std::uint32_t>(args.get_u64("max-retries", 10));
    initiator.set_retry_policy(policy);
  }

  fault::FaultPlan plan;
  plan.seed = args.get_u64("seed", 42);
  plan.packet_drops.push_back(
      {topo.hosts[0], 0,
       static_cast<common::SimTime>(args.get_double("drop-start-ms", 50.0) *
                                    common::kMillisecond),
       static_cast<common::SimTime>(args.get_double("drop-end-ms", 100.0) *
                                    common::kMillisecond),
       args.get_double("drop-prob", 0.3)});
  const std::size_t outage_device = args.get_u64("outage-device", 1);
  if (outage_device < target_config.device_count) {
    plan.outages.push_back(
        {0, outage_device,
         static_cast<common::SimTime>(args.get_double("outage-start-ms", 80.0) *
                                      common::kMillisecond),
         static_cast<common::SimTime>(args.get_double("outage-end-ms", 140.0) *
                                      common::kMillisecond)});
  }
  fault::FaultInjector injector(network, plan);
  injector.add_target(target);
  injector.arm();

  workload::Trace trace;
  const std::size_t requests = args.get_u64("requests", 2000);
  for (std::size_t i = 0; i < requests; ++i) {
    trace.push_back({common::microseconds(100.0 * static_cast<double>(i)),
                     i % 3 == 0 ? common::IoType::kWrite : common::IoType::kRead,
                     static_cast<std::uint64_t>(i) << 20, 32768});
  }
  initiator.run_trace(trace, [&](const workload::TraceRecord&, std::size_t) {
    return target.node_id();
  });
  sim.run_until(2 * common::kSecond);

  const auto& stats = initiator.stats();
  common::TextTable table({"metric", "value"});
  table.add_row({"requests issued",
                 std::to_string(stats.reads_issued + stats.writes_issued)});
  table.add_row({"completed",
                 std::to_string(stats.reads_completed + stats.writes_completed)});
  table.add_row({"failed explicitly", std::to_string(stats.requests_failed())});
  table.add_row({"timeouts", std::to_string(stats.timeouts)});
  table.add_row({"retries", std::to_string(stats.retries)});
  table.add_row({"error completions", std::to_string(stats.error_completions)});
  table.add_row({"stale messages", std::to_string(stats.stale_messages)});
  table.add_row({"packets dropped", std::to_string(injector.stats().packets_dropped)});
  table.add_row({"errors returned", std::to_string(target.stats().errors_returned)});
  table.add_row({"rerouted requests", std::to_string(target.stats().rerouted_requests)});
  table.add_row({"all terminated", initiator.all_complete() ? "yes" : "NO"});
  table.print(std::cout);
  return initiator.all_complete() ? 0 : 1;
}

int cmd_tpm(const Args& args) {
  if (args.has("help")) {
    std::puts("srcctl tpm [--ssd SSD-A] [--seed 11] [--save model.tpm]");
    return 0;
  }
  const auto config = ssd::config_by_name(args.get("ssd", "SSD-A"));
  std::printf("collecting training data on %s...\n", config.name.c_str());
  const auto data = core::collect_training_data(
      config, core::default_training_grid(6000, args.get_u64("seed", 11)));
  const auto [train, test] = data.split(0.6, 42);
  core::Tpm tpm;
  tpm.fit(train);
  const auto [read_r2, write_r2] = tpm.score(test);
  std::printf("%zu samples; held-out R^2: read %.3f, write %.3f\n",
              data.size(), read_r2, write_r2);

  common::TextTable table({"feature", "importance"});
  const auto importances = tpm.feature_importances();
  const auto names = workload::WorkloadFeatures::names();
  for (std::size_t i = 0; i < importances.size(); ++i) {
    table.add_row({i < names.size() ? names[i] : "weight_ratio_w",
                   common::fmt(importances[i], 3)});
  }
  table.print(std::cout);
  if (args.has("save")) {
    const std::string out = args.get("save", "");
    tpm.save_file(out);
    std::printf("model written to %s\n", out.c_str());
  }
  return 0;
}

int cmd_trace_gen(const Args& args) {
  if (args.has("help")) {
    std::puts("srcctl trace-gen --out trace.csv [--preset micro|vdi|cbs]\n"
              "                 [--count 5000] [--iat 15] [--size-kb 32] [--seed 7]");
    return 0;
  }
  const std::string out = args.get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "--out is required\n");
    return 2;
  }
  const std::string preset = args.get("preset", "micro");
  const std::size_t count = args.get_u64("count", 5000);
  const std::uint64_t seed = args.get_u64("seed", 7);

  workload::Trace trace;
  if (preset == "micro") {
    trace = workload::generate_micro(
        workload::symmetric_micro(args.get_double("iat", 15.0),
                                  args.get_double("size-kb", 32.0) * 1024, count),
        seed);
  } else if (preset == "vdi") {
    trace = workload::generate_synthetic(workload::fujitsu_vdi_like(count), seed);
  } else if (preset == "cbs") {
    trace = workload::generate_synthetic(workload::tencent_cbs_like(count), seed);
  } else {
    std::fprintf(stderr, "unknown preset '%s'\n", preset.c_str());
    return 2;
  }
  workload::write_csv_trace_file(out, trace);
  std::printf("wrote %zu requests to %s\n", trace.size(), out.c_str());
  return 0;
}

int cmd_trace_stats(const Args& args) {
  if (args.has("help")) {
    std::puts("srcctl trace-stats --trace trace.csv");
    return 0;
  }
  const std::string path = args.get("trace", "");
  if (path.empty()) {
    std::fprintf(stderr, "--trace is required\n");
    return 2;
  }
  const auto trace = workload::read_csv_trace_file(path);
  const auto stats = workload::analyze(trace);
  common::TextTable table({"stream", "count", "mean IAT us", "IAT SCV",
                           "mean size KB", "size SCV", "flow Gbps"});
  auto row = [&](const char* name, const workload::StreamStats& s) {
    table.add_row({name, std::to_string(s.count), common::fmt(s.mean_iat_us, 1),
                   common::fmt(s.scv_iat), common::fmt(s.mean_size_bytes / 1024.0, 1),
                   common::fmt(s.scv_size),
                   common::fmt(s.flow_speed_bytes_per_sec * 8 / 1e9)});
  };
  row("read", stats.read);
  row("write", stats.write);
  table.print(std::cout);
  std::printf("duration %.1f ms, read ratio %.2f\n",
              common::to_milliseconds(stats.duration), stats.read_ratio);
  return 0;
}

int cmd_replay(const Args& args) {
  if (args.has("help")) {
    std::puts("srcctl replay --trace trace.csv [--ssd SSD-A] [--weight 1]");
    return 0;
  }
  const std::string path = args.get("trace", "");
  if (path.empty()) {
    std::fprintf(stderr, "--trace is required\n");
    return 2;
  }
  const auto trace = workload::read_csv_trace_file(path);
  core::StandaloneOptions options;
  options.weight_ratio = static_cast<std::uint32_t>(args.get_u64("weight", 1));
  options.horizon = core::arrival_horizon(trace);
  const auto result = core::run_standalone(
      ssd::config_by_name(args.get("ssd", "SSD-A")), trace, options);
  std::printf("%zu requests: read %.2f Gbps, write %.2f Gbps, "
              "read latency %.0f us, write latency %.0f us\n",
              trace.size(), result.read_rate.as_gbps(),
              result.write_rate.as_gbps(), result.mean_read_latency_us,
              result.mean_write_latency_us);
  return 0;
}

/// Validate one bench-harness JSON file (schema "src-bench-v1", written by
/// bench/harness.hpp). Returns an empty string when valid, else a message.
std::string check_bench_json(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "cannot open file";
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  obs::Json doc;
  try {
    doc = obs::Json::parse(text);
  } catch (const std::runtime_error& err) {
    return err.what();
  }
  if (!doc.is_object()) return "top level is not an object";
  const obs::Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "src-bench-v1") {
    return "missing or unexpected \"schema\" (want \"src-bench-v1\")";
  }
  const obs::Json* bench = doc.find("bench");
  if (bench == nullptr || !bench->is_string() || bench->as_string().empty()) {
    return "missing \"bench\" name";
  }
  const obs::Json* total = doc.find("total_wall_seconds");
  if (total == nullptr || !total->is_number() || total->as_number() < 0.0) {
    return "missing or negative \"total_wall_seconds\"";
  }
  const obs::Json* sections = doc.find("sections");
  if (sections == nullptr || !sections->is_array()) {
    return "missing \"sections\" array";
  }
  std::size_t index = 0;
  for (const obs::Json& section : sections->as_array()) {
    const std::string where = "sections[" + std::to_string(index++) + "]: ";
    if (!section.is_object()) return where + "not an object";
    const obs::Json* name = section.find("name");
    if (name == nullptr || !name->is_string() || name->as_string().empty()) {
      return where + "missing \"name\"";
    }
    for (const char* key : {"wall_seconds", "iterations", "events",
                            "events_per_sec", "items", "items_per_sec"}) {
      const obs::Json* value = section.find(key);
      if (value == nullptr || !value->is_number() || value->as_number() < 0.0) {
        return where + "missing or negative \"" + key + "\"";
      }
    }
  }
  return "";
}

int cmd_benchcheck(int argc, char** argv) {
  if (argc < 3 || std::string(argv[2]) == "--help") {
    std::puts("srcctl benchcheck BENCH_a.json [BENCH_b.json ...]\n"
              "\n"
              "Validates bench-harness output files against the src-bench-v1\n"
              "schema; exits non-zero if any file is missing or malformed.");
    return argc < 3 ? 2 : 0;
  }
  int failures = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string path = argv[i];
    const std::string error = check_bench_json(path);
    if (error.empty()) {
      std::printf("ok      %s\n", path.c_str());
    } else {
      std::printf("FAILED  %s: %s\n", path.c_str(), error.c_str());
      ++failures;
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "benchcheck: %d of %d file(s) invalid\n", failures,
                 argc - 2);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string command = argc > 1 ? argv[1] : "";
  if (command == "benchcheck") return cmd_benchcheck(argc, argv);
  const Args args(argc, argv, 2);
  if (command == "sweep") return cmd_sweep(args);
  if (command == "experiment") return cmd_experiment(args);
  if (command == "trace") return cmd_trace(args);
  if (command == "tpm") return cmd_tpm(args);
  if (command == "trace-gen") return cmd_trace_gen(args);
  if (command == "replay") return cmd_replay(args);
  if (command == "trace-stats") return cmd_trace_stats(args);
  if (command == "faults") return cmd_faults(args);
  std::fprintf(stderr,
               "usage: srcctl <sweep|experiment|trace|tpm|trace-gen|trace-stats|replay|faults|benchcheck> [--flags]\n"
               "       srcctl <command> --help\n");
  return command.empty() ? 2 : 2;
}
