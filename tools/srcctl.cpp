// srcctl — command-line front end for the SRC simulator library.
//
// Subcommands live in the kCommands table below; `srcctl help` (or any
// unknown command) prints the generated listing, and every command accepts
// `--help` for its own flags.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <iterator>
#include <map>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "chaos/campaign.hpp"
#include "chaos/report.hpp"
#include "chaos/shrink.hpp"
#include "common/table.hpp"
#include "core/presets.hpp"
#include "core/standalone.hpp"
#include "fault/fault_injector.hpp"
#include "obs/obs.hpp"
#include "scenario/build.hpp"
#include "scenario/presets.hpp"
#include "scenario/registry.hpp"
#include "scenario/serialize.hpp"
#include "verify/invariants.hpp"
#include "workload/trace_io.hpp"

using namespace src;

namespace {

/// Tiny --flag=value / --flag value parser. Non-flag tokens are collected
/// as positionals; whether a command accepts them is declared in its
/// kCommands entry (main rejects stray ones up front).
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string token = argv[i];
      if (token == "-o") {
        token = "--out";  // conventional short form for output files
      }
      if (token.rfind("--", 0) != 0) {
        positionals_.push_back(token);
        continue;
      }
      token = token.substr(2);
      const auto eq = token.find('=');
      if (eq != std::string::npos) {
        values_[token.substr(0, eq)] = token.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[token] = argv[++i];
      } else {
        values_[token] = "true";
      }
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoull(it->second);
  }
  bool has(const std::string& key) const { return values_.count(key) > 0; }
  const std::vector<std::string>& positionals() const { return positionals_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

int cmd_sweep(const Args& args) {
  if (args.has("help")) {
    std::puts("srcctl sweep [--ssd SSD-A] [--iat 15] [--size-kb 32] "
              "[--count 6000] [--seed 7]");
    return 0;
  }
  const auto config = ssd::config_by_name(args.get("ssd", "SSD-A"));
  const double iat = args.get_double("iat", 15.0);
  const double size_kb = args.get_double("size-kb", 32.0);
  const auto trace = workload::generate_micro(
      workload::symmetric_micro(iat, size_kb * 1024,
                                args.get_u64("count", 6000)),
      args.get_u64("seed", 7));

  common::TextTable table({"w", "read Gbps", "write Gbps", "aggregate"});
  for (const std::uint32_t w : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u}) {
    core::StandaloneOptions options;
    options.weight_ratio = w;
    options.horizon = core::arrival_horizon(trace);
    const auto result = core::run_standalone(config, trace, options);
    table.add_row({std::to_string(w) + ":1",
                   common::fmt(result.read_rate.as_gbps()),
                   common::fmt(result.write_rate.as_gbps()),
                   common::fmt(result.aggregate_rate().as_gbps())});
  }
  table.print(std::cout);
  return 0;
}

/// Write `text` to `path`, exiting with a message on failure.
void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  out << text << '\n';
}

int cmd_experiment(const Args& args) {
  if (args.has("help")) {
    std::puts("srcctl experiment [--preset vdi|light|moderate|heavy|incast]\n"
              "                  [--targets 2] [--initiators 1] [--seed 99]\n"
              "                  [--model file.tpm] [--metrics-out metrics.json]");
    return 0;
  }
  const std::string preset = args.get("preset", "vdi");
  core::Tpm tpm;
  if (args.has("model")) {
    tpm = core::Tpm::load_file(args.get("model", ""));
    std::printf("loaded TPM from %s\n", args.get("model", "").c_str());
  } else {
    std::printf("training TPM for SSD-A (use --model file.tpm to skip)...\n");
    tpm = core::train_default_tpm(ssd::ssd_a());
  }

  auto build = [&](bool use_src) -> core::ExperimentConfig {
    const std::uint64_t seed = args.get_u64("seed", 99);
    const core::Tpm* model = use_src ? &tpm : nullptr;
    if (preset == "vdi") return core::vdi_experiment(use_src, model, seed);
    if (preset == "light")
      return core::intensity_experiment(core::Intensity::kLight, use_src, model, seed);
    if (preset == "moderate")
      return core::intensity_experiment(core::Intensity::kModerate, use_src, model, seed);
    if (preset == "heavy")
      return core::intensity_experiment(core::Intensity::kHeavy, use_src, model, seed);
    if (preset == "incast")
      return core::incast_experiment(args.get_u64("targets", 2),
                                     args.get_u64("initiators", 1), use_src,
                                     model, seed);
    std::fprintf(stderr, "unknown preset '%s'\n", preset.c_str());
    std::exit(2);
  };

  // Metrics observatories (tracing off: the counters are what we export).
  obs::ObsConfig obs_config;
  obs_config.tracing = false;
  obs::Observatory only_obs(obs_config);
  obs::Observatory src_obs(obs_config);

  auto only_config = build(false);
  auto src_config = build(true);
  if (args.has("metrics-out")) {
    only_config.observatory = &only_obs;
    src_config.observatory = &src_obs;
  }
  const auto only = core::run_experiment(only_config);
  const auto with_src = core::run_experiment(src_config);

  if (args.has("metrics-out")) {
    obs::Json combined = obs::Json::Object{};
    combined.set("dcqcn_only", obs::Json::parse(only_obs.metrics_json()));
    combined.set("dcqcn_src", obs::Json::parse(src_obs.metrics_json()));
    const std::string path = args.get("metrics-out", "");
    write_text_file(path, combined.dump(2));
    std::printf("metrics written to %s\n", path.c_str());
  }

  common::TextTable table({"Mode", "read", "write", "aggregate", "signals"});
  auto row = [&](const char* name, const core::ExperimentResult& r) {
    table.add_row({name, common::fmt(r.read_rate.as_gbps()),
                   common::fmt(r.write_rate.as_gbps()),
                   common::fmt(r.aggregate_rate().as_gbps()),
                   std::to_string(r.pause_timeline.total())});
  };
  row("DCQCN-only", only);
  row("DCQCN-SRC", with_src);
  table.print(std::cout);
  const double gain = (with_src.aggregate_rate().as_bytes_per_second() /
                           only.aggregate_rate().as_bytes_per_second() -
                       1.0) * 100.0;
  std::printf("aggregate improvement: %+.0f%% (rates in Gbps)\n", gain);

  // Robustness counters: all zero on a healthy run, so only print when the
  // fault/retry machinery actually did something.
  auto robustness = [](const char* name, const core::ExperimentResult& r) {
    const std::uint64_t activity = r.retries + r.timeouts + r.error_completions +
                                   r.reads_failed + r.writes_failed +
                                   r.errors_returned + r.rerouted_requests +
                                   r.signals_suppressed +
                                   r.controller_stats.invalid_demand_events +
                                   r.controller_stats.rejected_predictions +
                                   r.controller_stats.watchdog_decays;
    if (activity == 0) return;
    std::printf("%s robustness: %llu retries, %llu timeouts, %llu error "
                "completions, %llu failed, %llu rerouted, %llu signals lost, "
                "%llu bad demands, %llu bad predictions, %llu watchdog decays\n",
                name, static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.timeouts),
                static_cast<unsigned long long>(r.error_completions),
                static_cast<unsigned long long>(r.reads_failed + r.writes_failed),
                static_cast<unsigned long long>(r.rerouted_requests),
                static_cast<unsigned long long>(r.signals_suppressed),
                static_cast<unsigned long long>(r.controller_stats.invalid_demand_events),
                static_cast<unsigned long long>(r.controller_stats.rejected_predictions),
                static_cast<unsigned long long>(r.controller_stats.watchdog_decays));
  };
  robustness("DCQCN-only", only);
  robustness("DCQCN-SRC", with_src);
  return 0;
}

/// Run-report JSON ("src-run-v1"): scenario name, headline metrics, and the
/// full observatory snapshot. `srcctl metricscheck` validates this shape.
obs::Json run_report(const std::string& scenario_name,
                     const core::ExperimentResult& result,
                     const obs::Observatory& observatory) {
  obs::Json report{obs::Json::Object{}};
  report.set("schema", obs::Json{"src-run-v1"});
  report.set("scenario", obs::Json{scenario_name});
  report.set("read_gbps", obs::Json{result.read_rate.as_gbps()});
  report.set("write_gbps", obs::Json{result.write_rate.as_gbps()});
  report.set("aggregate_gbps", obs::Json{result.aggregate_rate().as_gbps()});
  report.set("total_pauses", obs::Json{result.total_pauses});
  report.set("reads_completed", obs::Json{result.reads_completed});
  report.set("writes_completed", obs::Json{result.writes_completed});
  report.set("final_weight_ratio",
             obs::Json{static_cast<std::uint64_t>(result.final_weight_ratio())});
  report.set("completed", obs::Json{result.completed});
  report.set("read_jain_index", obs::Json{result.read_fairness_index()});
  obs::Json per_initiator{obs::Json::Array{}};
  for (const common::Rate rate : result.per_initiator_read_rate) {
    per_initiator.push_back(obs::Json{rate.as_gbps()});
  }
  report.set("per_initiator_read_gbps", std::move(per_initiator));
  obs::Json shares{obs::Json::Array{}};
  for (const double share : result.read_shares()) {
    shares.push_back(obs::Json{share});
  }
  report.set("read_shares", std::move(shares));
  report.set("metrics", observatory.metrics().snapshot());
  return report;
}

/// Pod-kind arm of `srcctl run`: pod manifests execute on the sharded lane
/// engine via scenario::run_pod and report pod metrics (striped read/write
/// chunks, cross-shard messages) instead of the star experiment's weight
/// trajectory. --metrics-out writes an "src-pod-run-v1" report.
int run_pod_scenario(const scenario::ScenarioSpec& spec, const Args& args) {
  obs::ObsConfig obs_config;
  obs_config.tracing = false;
  obs::Observatory observatory(obs_config);
  scenario::BuildOptions options;
  options.observatory = &observatory;

  core::PodExperimentResult result;
  try {
    result = scenario::run_pod(spec, options);
  } catch (const std::exception& err) {
    std::fprintf(stderr, "%s\n", err.what());
    return 1;
  }

  const scenario::PodSpec& pod = spec.topology.pod;
  std::printf("%s: pod grammar %zux%zux%zu (oversub %.1f, partition %s), "
              "%zu lane(s)\n",
              spec.name.c_str(), pod.pods, pod.racks_per_pod,
              pod.hosts_per_rack, pod.oversubscription, pod.partition.c_str(),
              spec.lanes == 0 ? std::size_t{1} : spec.lanes);
  std::printf("  read %.2f Gbps, %llu read + %llu write chunks, %llu pauses, "
              "Jain index %.4f%s\n",
              result.read_rate().as_gbps(),
              static_cast<unsigned long long>(result.reads_completed),
              static_cast<unsigned long long>(result.writes_completed),
              static_cast<unsigned long long>(result.total_pauses),
              result.read_fairness_index(),
              result.completed ? "" : " (hit max_time cap)");
  std::printf("  %llu events executed, %llu cross-shard messages, "
              "end %.1f ms\n",
              static_cast<unsigned long long>(result.events_executed),
              static_cast<unsigned long long>(result.cross_shard_messages),
              common::to_milliseconds(result.end_time));

  if (args.has("metrics-out")) {
    obs::Json report{obs::Json::Object{}};
    report.set("schema", obs::Json{"src-pod-run-v1"});
    report.set("scenario", obs::Json{spec.name});
    report.set("read_gbps", obs::Json{result.read_rate().as_gbps()});
    report.set("read_jain_index", obs::Json{result.read_fairness_index()});
    report.set("reads_completed", obs::Json{result.reads_completed});
    report.set("writes_completed", obs::Json{result.writes_completed});
    report.set("total_pauses", obs::Json{result.total_pauses});
    report.set("events_executed", obs::Json{result.events_executed});
    report.set("cross_shard_messages", obs::Json{result.cross_shard_messages});
    report.set("completed", obs::Json{result.completed});
    obs::Json per_initiator{obs::Json::Array{}};
    for (const std::uint64_t bytes : result.per_initiator_read_bytes) {
      per_initiator.push_back(obs::Json{bytes});
    }
    report.set("per_initiator_read_bytes", std::move(per_initiator));
    report.set("metrics", observatory.metrics().snapshot());
    const std::string path = args.get("metrics-out", "");
    write_text_file(path, report.dump(2));
    std::printf("metrics written to %s\n", path.c_str());
  }
  return 0;
}

int cmd_run(const Args& args) {
  if (args.has("help") || args.positionals().empty()) {
    std::puts("srcctl run <scenario.json> [--model file.tpm]\n"
              "           [--metrics-out report.json] [--dump] [--lenient]\n"
              "           [--lanes N]\n"
              "\n"
              "Runs a src-scenario-v1 manifest end to end and prints the\n"
              "measured throughput. --model supplies a pre-fitted TPM\n"
              "(overriding the manifest's src.tpm source); --metrics-out\n"
              "writes a src-run-v1 report; --dump echoes the parsed manifest\n"
              "back as canonical JSON instead of running it. --lanes overrides\n"
              "the manifest's lane count (0 = classic single-kernel engine;\n"
              "N >= 1 = sharded lane engine with N worker threads — results\n"
              "are identical at every N). Pod-kind manifests always run on\n"
              "the lane engine and print a pod summary (--metrics-out then\n"
              "writes an src-pod-run-v1 report).\n"
              "\n"
              "Exit codes: 0 clean run, 1 runtime failure, 2 usage error,\n"
              "3 health failure — a controller guardrail tripped, requests\n"
              "exhausted their retries, or (with a `verify` block) a runtime\n"
              "invariant checker fired. --lenient downgrades 3 back to 0.");
    return args.has("help") ? 0 : 2;
  }
  if (args.positionals().size() != 1) {
    std::fprintf(stderr, "run: expected exactly one scenario file\n");
    return 2;
  }
  scenario::ScenarioSpec spec;
  try {
    spec = scenario::load_scenario_file(args.positionals().front());
  } catch (const std::runtime_error& err) {
    std::fprintf(stderr, "%s\n", err.what());
    return 2;
  }
  if (args.has("lanes")) {
    spec.lanes = args.get_u64("lanes", spec.lanes);
  }
  if (args.has("dump")) {
    std::fputs(scenario::to_json_text(spec).c_str(), stdout);
    return 0;
  }
  if (spec.topology.kind == "pod") return run_pod_scenario(spec, args);

  core::Tpm tpm;
  scenario::BuildOptions options;
  if (args.has("model")) {
    tpm = core::Tpm::load_file(args.get("model", ""));
    options.tpm = &tpm;
    std::printf("loaded TPM from %s\n", args.get("model", "").c_str());
  } else if (spec.src.enabled && spec.src.tpm.source == "train-default") {
    std::printf("training TPM for %s (use --model file.tpm to skip)...\n",
                spec.ssd.name.c_str());
  }
  obs::ObsConfig obs_config;
  obs_config.tracing = false;
  obs::Observatory observatory(obs_config);
  options.observatory = &observatory;

  core::ExperimentResult result;
  std::shared_ptr<verify::Report> verify_report;
  try {
    const scenario::BuiltScenario built = scenario::build(spec, options);
    verify_report = built.verify_report;
    result = core::run_experiment(built.config);
  } catch (const std::exception& err) {
    std::fprintf(stderr, "%s\n", err.what());
    return 1;
  }

  std::printf("%s: read %.2f Gbps, write %.2f Gbps, aggregate %.2f Gbps, "
              "%llu pauses, final w=%u%s\n",
              spec.name.c_str(), result.read_rate.as_gbps(),
              result.write_rate.as_gbps(), result.aggregate_rate().as_gbps(),
              static_cast<unsigned long long>(result.total_pauses),
              result.final_weight_ratio(),
              result.completed ? "" : " (hit max_time cap)");
  // Per-flow fairness summary — meaningful once several initiators share
  // the fabric (coexistence scenarios), harmless noise-free for one.
  if (result.per_initiator_read_rate.size() > 1) {
    const std::vector<double> shares = result.read_shares();
    std::printf("  read shares:");
    for (std::size_t i = 0; i < shares.size(); ++i) {
      std::printf(" i%zu=%.3f (%.2f Gbps)", i, shares[i],
                  result.per_initiator_read_rate[i].as_gbps());
    }
    std::printf("  Jain index %.4f\n", result.read_fairness_index());
  }
  if (args.has("metrics-out")) {
    const std::string path = args.get("metrics-out", "");
    write_text_file(path, run_report(spec.name, result, observatory).dump(2));
    std::printf("metrics written to %s\n", path.c_str());
  }

  // Health gate (exit 3): controller guardrails, retry exhaustion, and any
  // invariant-checker findings are hard failures unless --lenient.
  const std::uint64_t guardrails = result.controller_stats.invalid_demand_events +
                                   result.controller_stats.rejected_predictions +
                                   result.controller_stats.watchdog_decays;
  const std::uint64_t exhausted = result.reads_failed + result.writes_failed;
  std::size_t violations = 0;
  if (verify_report != nullptr) {
    violations = verify_report->violations.size();
    for (const verify::Violation& v : verify_report->violations) {
      std::fprintf(stderr, "verify: [%s] t=%lluns %s\n", v.checker.c_str(),
                   static_cast<unsigned long long>(v.when), v.detail.c_str());
    }
    if (verify_report->truncated) {
      std::fprintf(stderr, "verify: violation list truncated at cap\n");
    }
  }
  if (guardrails == 0 && exhausted == 0 && violations == 0) return 0;
  std::fprintf(stderr,
               "%s: unhealthy run: %llu guardrail trips, %llu requests "
               "exhausted retries, %zu invariant violations%s\n",
               spec.name.c_str(), static_cast<unsigned long long>(guardrails),
               static_cast<unsigned long long>(exhausted), violations,
               args.has("lenient") ? " (--lenient: ignoring)" : "");
  return args.has("lenient") ? 0 : 3;
}

int cmd_scenarios(const Args& args) {
  if (args.has("help")) {
    std::puts("srcctl scenarios                 list built-in presets\n"
              "srcctl scenarios <name>          dump one preset as JSON\n"
              "srcctl scenarios --all --out-dir DIR\n"
              "                                 write every preset to DIR/<name>.json");
    return 0;
  }
  if (!args.positionals().empty()) {
    if (args.positionals().size() != 1) {
      std::fprintf(stderr, "scenarios: expected at most one preset name\n");
      return 2;
    }
    scenario::ScenarioSpec spec;
    try {
      spec = scenario::preset_spec(args.positionals().front());
    } catch (const std::invalid_argument& err) {
      std::fprintf(stderr, "%s\n", err.what());
      return 2;
    }
    std::fputs(scenario::to_json_text(spec).c_str(), stdout);
    return 0;
  }
  if (args.has("all")) {
    const std::string dir = args.get("out-dir", "");
    if (dir.empty()) {
      std::fprintf(stderr, "scenarios --all needs --out-dir DIR\n");
      return 2;
    }
    for (const std::string& name : scenario::preset_registry().names()) {
      const std::string path = dir + "/" + name + ".json";
      std::ofstream out(path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
        return 1;
      }
      out << scenario::to_json_text(scenario::preset_spec(name));
      std::printf("wrote %s\n", path.c_str());
    }
    return 0;
  }
  common::TextTable table({"name", "description"});
  for (const std::string& name : scenario::preset_registry().names()) {
    table.add_row({name, scenario::preset_registry().at(name).description});
  }
  table.print(std::cout);
  std::puts("\ndump one with `srcctl scenarios <name>`, run it with "
            "`srcctl run <file>`");
  return 0;
}

int cmd_trace(const Args& args) {
  if (args.has("help")) {
    std::puts("srcctl trace --preset fig7|fig9|fig10-light|fig10-moderate|\n"
              "                      fig10-heavy|table4\n"
              "             [-o|--out trace.json] [--metrics-out metrics.json]\n"
              "             [--model file.tpm] [--capacity 65536]\n"
              "\n"
              "Runs the preset with event tracing enabled and writes a Chrome\n"
              "trace_event JSON (load it at https://ui.perfetto.dev).");
    return 0;
  }
  const std::string preset = args.get("preset", "fig9");
  const std::string out = args.get("out", "trace.json");

  core::Tpm tpm;
  const core::Tpm* model = nullptr;
  if (preset != "fig7") {  // every other preset runs SRC and needs a TPM
    if (args.has("model")) {
      tpm = core::Tpm::load_file(args.get("model", ""));
      std::printf("loaded TPM from %s\n", args.get("model", "").c_str());
    } else {
      std::printf("training TPM for SSD-A (use --model file.tpm to skip)...\n");
      tpm = core::train_default_tpm(ssd::ssd_a());
    }
    model = &tpm;
  }

  core::ExperimentConfig config;
  try {
    config = core::preset_by_name(preset, model);
  } catch (const std::invalid_argument& err) {
    std::fprintf(stderr, "%s\n", err.what());
    return 2;
  }

  obs::ObsConfig obs_config;
  obs_config.tracing = true;
  obs_config.trace_capacity = args.get_u64("capacity", obs_config.trace_capacity);
  obs::Observatory observatory(obs_config);
  config.observatory = &observatory;

  const auto result = core::run_experiment(config);

  write_text_file(out, observatory.trace_json());
  std::printf("%s: read %.2f Gbps, write %.2f Gbps, %llu pauses, final w=%u\n",
              preset.c_str(), result.read_rate.as_gbps(),
              result.write_rate.as_gbps(),
              static_cast<unsigned long long>(result.total_pauses),
              result.final_weight_ratio());
  std::printf("trace: %zu events kept (%llu recorded, %llu dropped) -> %s\n",
              observatory.tracer().size(),
              static_cast<unsigned long long>(observatory.tracer().recorded()),
              static_cast<unsigned long long>(observatory.tracer().dropped()),
              out.c_str());
  if (args.has("metrics-out")) {
    const std::string metrics_path = args.get("metrics-out", "");
    write_text_file(metrics_path, observatory.metrics_json());
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}

int cmd_faults(const Args& args) {
  if (args.has("help")) {
    std::puts("srcctl faults [--seed 42] [--requests 2000] [--devices 4]\n"
              "              [--drop-prob 0.3] [--drop-start-ms 50] [--drop-end-ms 100]\n"
              "              [--outage-device 1] [--outage-start-ms 80] [--outage-end-ms 140]\n"
              "              [--max-retries 10] [--no-retry]");
    return 0;
  }
  sim::Simulator sim;
  net::Network network(sim, net::NetConfig{});
  auto topo = net::make_star(network, 2, common::Rate::gbps(10.0),
                             common::kMicrosecond);
  fabric::FabricContext context;
  fabric::Initiator initiator(network, topo.hosts[0], context);
  fabric::TargetConfig target_config;
  target_config.device_count = args.get_u64("devices", 4);
  fabric::Target target(network, topo.hosts[1], context, target_config);

  if (!args.has("no-retry")) {
    fabric::RetryPolicy policy;
    policy.enabled = true;
    policy.base_timeout = 2 * common::kMillisecond;
    policy.max_timeout = 16 * common::kMillisecond;
    policy.max_retries = static_cast<std::uint32_t>(args.get_u64("max-retries", 10));
    initiator.set_retry_policy(policy);
  }

  fault::FaultPlan plan;
  plan.seed = args.get_u64("seed", 42);
  plan.packet_drops.push_back(
      {topo.hosts[0], 0,
       static_cast<common::SimTime>(args.get_double("drop-start-ms", 50.0) *
                                    common::kMillisecond),
       static_cast<common::SimTime>(args.get_double("drop-end-ms", 100.0) *
                                    common::kMillisecond),
       args.get_double("drop-prob", 0.3)});
  const std::size_t outage_device = args.get_u64("outage-device", 1);
  if (outage_device < target_config.device_count) {
    plan.outages.push_back(
        {0, outage_device,
         static_cast<common::SimTime>(args.get_double("outage-start-ms", 80.0) *
                                      common::kMillisecond),
         static_cast<common::SimTime>(args.get_double("outage-end-ms", 140.0) *
                                      common::kMillisecond)});
  }
  fault::FaultInjector injector(network, plan);
  injector.add_target(target);
  injector.arm();

  workload::Trace trace;
  const std::size_t requests = args.get_u64("requests", 2000);
  for (std::size_t i = 0; i < requests; ++i) {
    trace.push_back({common::microseconds(100.0 * static_cast<double>(i)),
                     i % 3 == 0 ? common::IoType::kWrite : common::IoType::kRead,
                     static_cast<std::uint64_t>(i) << 20, 32768});
  }
  initiator.run_trace(trace, [&](const workload::TraceRecord&, std::size_t) {
    return target.node_id();
  });
  sim.run_until(2 * common::kSecond);

  const auto& stats = initiator.stats();
  common::TextTable table({"metric", "value"});
  table.add_row({"requests issued",
                 std::to_string(stats.reads_issued + stats.writes_issued)});
  table.add_row({"completed",
                 std::to_string(stats.reads_completed + stats.writes_completed)});
  table.add_row({"failed explicitly", std::to_string(stats.requests_failed())});
  table.add_row({"timeouts", std::to_string(stats.timeouts)});
  table.add_row({"retries", std::to_string(stats.retries)});
  table.add_row({"error completions", std::to_string(stats.error_completions)});
  table.add_row({"stale messages", std::to_string(stats.stale_messages)});
  table.add_row({"packets dropped", std::to_string(injector.stats().packets_dropped)});
  table.add_row({"errors returned", std::to_string(target.stats().errors_returned)});
  table.add_row({"rerouted requests", std::to_string(target.stats().rerouted_requests)});
  table.add_row({"all terminated", initiator.all_complete() ? "yes" : "NO"});
  table.print(std::cout);
  return initiator.all_complete() ? 0 : 1;
}

int cmd_tpm(const Args& args) {
  if (args.has("help")) {
    std::puts("srcctl tpm [--ssd SSD-A] [--seed 11] [--save model.tpm]");
    return 0;
  }
  const auto config = ssd::config_by_name(args.get("ssd", "SSD-A"));
  std::printf("collecting training data on %s...\n", config.name.c_str());
  const auto data = core::collect_training_data(
      config, core::default_training_grid(6000, args.get_u64("seed", 11)));
  const auto [train, test] = data.split(0.6, 42);
  core::Tpm tpm;
  tpm.fit(train);
  const auto [read_r2, write_r2] = tpm.score(test);
  std::printf("%zu samples; held-out R^2: read %.3f, write %.3f\n",
              data.size(), read_r2, write_r2);

  common::TextTable table({"feature", "importance"});
  const auto importances = tpm.feature_importances();
  const auto names = workload::WorkloadFeatures::names();
  for (std::size_t i = 0; i < importances.size(); ++i) {
    table.add_row({i < names.size() ? names[i] : "weight_ratio_w",
                   common::fmt(importances[i], 3)});
  }
  table.print(std::cout);
  if (args.has("save")) {
    const std::string out = args.get("save", "");
    tpm.save_file(out);
    std::printf("model written to %s\n", out.c_str());
  }
  return 0;
}

int cmd_trace_gen(const Args& args) {
  if (args.has("help")) {
    std::puts("srcctl trace-gen --out trace.csv [--preset micro|vdi|cbs]\n"
              "                 [--count 5000] [--iat 15] [--size-kb 32] [--seed 7]");
    return 0;
  }
  const std::string out = args.get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "--out is required\n");
    return 2;
  }
  const std::string preset = args.get("preset", "micro");
  const std::size_t count = args.get_u64("count", 5000);
  const std::uint64_t seed = args.get_u64("seed", 7);

  workload::Trace trace;
  if (preset == "micro") {
    trace = workload::generate_micro(
        workload::symmetric_micro(args.get_double("iat", 15.0),
                                  args.get_double("size-kb", 32.0) * 1024, count),
        seed);
  } else if (preset == "vdi") {
    trace = workload::generate_synthetic(workload::fujitsu_vdi_like(count), seed);
  } else if (preset == "cbs") {
    trace = workload::generate_synthetic(workload::tencent_cbs_like(count), seed);
  } else {
    std::fprintf(stderr, "unknown preset '%s'\n", preset.c_str());
    return 2;
  }
  workload::write_csv_trace_file(out, trace);
  std::printf("wrote %zu requests to %s\n", trace.size(), out.c_str());
  return 0;
}

int cmd_trace_stats(const Args& args) {
  if (args.has("help")) {
    std::puts("srcctl trace-stats --trace trace.csv");
    return 0;
  }
  const std::string path = args.get("trace", "");
  if (path.empty()) {
    std::fprintf(stderr, "--trace is required\n");
    return 2;
  }
  const auto trace = workload::read_csv_trace_file(path);
  const auto stats = workload::analyze(trace);
  common::TextTable table({"stream", "count", "mean IAT us", "IAT SCV",
                           "mean size KB", "size SCV", "flow Gbps"});
  auto row = [&](const char* name, const workload::StreamStats& s) {
    table.add_row({name, std::to_string(s.count), common::fmt(s.mean_iat_us, 1),
                   common::fmt(s.scv_iat), common::fmt(s.mean_size_bytes / 1024.0, 1),
                   common::fmt(s.scv_size),
                   common::fmt(s.flow_speed_bytes_per_sec * 8 / 1e9)});
  };
  row("read", stats.read);
  row("write", stats.write);
  table.print(std::cout);
  std::printf("duration %.1f ms, read ratio %.2f\n",
              common::to_milliseconds(stats.duration), stats.read_ratio);
  return 0;
}

int cmd_replay(const Args& args) {
  if (args.has("help")) {
    std::puts("srcctl replay --trace trace.csv [--ssd SSD-A] [--weight 1]");
    return 0;
  }
  const std::string path = args.get("trace", "");
  if (path.empty()) {
    std::fprintf(stderr, "--trace is required\n");
    return 2;
  }
  const auto trace = workload::read_csv_trace_file(path);
  core::StandaloneOptions options;
  options.weight_ratio = static_cast<std::uint32_t>(args.get_u64("weight", 1));
  options.horizon = core::arrival_horizon(trace);
  const auto result = core::run_standalone(
      ssd::config_by_name(args.get("ssd", "SSD-A")), trace, options);
  std::printf("%zu requests: read %.2f Gbps, write %.2f Gbps, "
              "read latency %.0f us, write latency %.0f us\n",
              trace.size(), result.read_rate.as_gbps(),
              result.write_rate.as_gbps(), result.mean_read_latency_us,
              result.mean_write_latency_us);
  return 0;
}

/// Validate one bench-harness JSON file (schema "src-bench-v1", written by
/// bench/harness.hpp). Returns an empty string when valid, else a message.
std::string check_bench_json(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "cannot open file";
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  obs::Json doc;
  try {
    doc = obs::Json::parse(text);
  } catch (const std::runtime_error& err) {
    return err.what();
  }
  if (!doc.is_object()) return "top level is not an object";
  const obs::Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "src-bench-v1") {
    return "missing or unexpected \"schema\" (want \"src-bench-v1\")";
  }
  const obs::Json* bench = doc.find("bench");
  if (bench == nullptr || !bench->is_string() || bench->as_string().empty()) {
    return "missing \"bench\" name";
  }
  const obs::Json* total = doc.find("total_wall_seconds");
  if (total == nullptr || !total->is_number() || total->as_number() < 0.0) {
    return "missing or negative \"total_wall_seconds\"";
  }
  const obs::Json* sections = doc.find("sections");
  if (sections == nullptr || !sections->is_array()) {
    return "missing \"sections\" array";
  }
  std::size_t index = 0;
  for (const obs::Json& section : sections->as_array()) {
    const std::string where = "sections[" + std::to_string(index++) + "]: ";
    if (!section.is_object()) return where + "not an object";
    const obs::Json* name = section.find("name");
    if (name == nullptr || !name->is_string() || name->as_string().empty()) {
      return where + "missing \"name\"";
    }
    for (const char* key : {"wall_seconds", "iterations", "events",
                            "events_per_sec", "items", "items_per_sec"}) {
      const obs::Json* value = section.find(key);
      if (value == nullptr || !value->is_number() || value->as_number() < 0.0) {
        return where + "missing or negative \"" + key + "\"";
      }
    }
  }
  return "";
}

/// Shared driver for the *check commands: validate each positional file
/// with `check`, print per-file ok/FAILED lines, exit 1 on any failure.
int run_file_checks(const Args& args, const char* what,
                    const std::function<std::string(const std::string&)>& check) {
  int failures = 0;
  for (const std::string& path : args.positionals()) {
    const std::string error = check(path);
    if (error.empty()) {
      std::printf("ok      %s\n", path.c_str());
    } else {
      std::printf("FAILED  %s: %s\n", path.c_str(), error.c_str());
      ++failures;
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "%s: %d of %zu file(s) invalid\n", what, failures,
                 args.positionals().size());
  }
  return failures == 0 ? 0 : 1;
}

/// Parse a JSON file; empty error string on success.
std::string load_json_file(const std::string& path, obs::Json& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "cannot open file";
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  try {
    out = obs::Json::parse(text);
  } catch (const std::runtime_error& err) {
    return err.what();
  }
  return "";
}

/// Compare a schema-valid bench file against a schema-valid baseline:
/// section-name sets must match; per section, deterministic work measures
/// are gated — `items` exactly, `events` within `tolerance` (relative).
/// Wall-clock fields are never compared (machines differ); the committed
/// baseline pins the *workload*, not the speed.
std::string diff_bench_json(const obs::Json& baseline, const obs::Json& doc,
                            double tolerance) {
  std::map<std::string, const obs::Json*> want;
  for (const obs::Json& section : baseline.find("sections")->as_array()) {
    want.emplace(section.find("name")->as_string(), &section);
  }
  std::size_t seen = 0;
  for (const obs::Json& section : doc.find("sections")->as_array()) {
    const std::string name = section.find("name")->as_string();
    const auto it = want.find(name);
    if (it == want.end()) {
      return "section \"" + name + "\" not in baseline";
    }
    ++seen;
    const double base_items = it->second->find("items")->as_number();
    const double items = section.find("items")->as_number();
    if (items != base_items) {
      return "section \"" + name + "\": items " + obs::Json{items}.dump() +
             " != baseline " + obs::Json{base_items}.dump();
    }
    const double base_events = it->second->find("events")->as_number();
    const double events = section.find("events")->as_number();
    const double limit = tolerance * std::max(base_events, 1.0);
    if (std::abs(events - base_events) > limit) {
      char bound[32];
      std::snprintf(bound, sizeof(bound), "%g", tolerance);
      return "section \"" + name + "\": events " + obs::Json{events}.dump() +
             " deviates from baseline " + obs::Json{base_events}.dump() +
             " by more than " + bound + " relative";
    }
  }
  if (seen != want.size()) {
    return "baseline has " + std::to_string(want.size()) +
           " sections, file has " + std::to_string(seen);
  }
  return "";
}

int cmd_benchcheck(const Args& args) {
  if (args.has("help") || args.positionals().empty()) {
    std::puts("srcctl benchcheck BENCH_a.json [BENCH_b.json ...]\n"
              "                  [--baseline BENCH_base.json] [--tolerance F]\n"
              "\n"
              "Validates bench-harness output files against the src-bench-v1\n"
              "schema; exits non-zero if any file is missing or malformed.\n"
              "With --baseline, additionally gates each file against the\n"
              "committed baseline: identical section names, exact `items`,\n"
              "and `events` within --tolerance (relative, default 0.1).\n"
              "Wall-clock timings are never compared.");
    return args.has("help") ? 0 : 2;
  }
  if (!args.has("baseline")) {
    return run_file_checks(args, "benchcheck", check_bench_json);
  }
  const std::string baseline_path = args.get("baseline", "");
  std::string error = check_bench_json(baseline_path);
  obs::Json baseline;
  if (error.empty()) error = load_json_file(baseline_path, baseline);
  if (!error.empty()) {
    std::fprintf(stderr, "benchcheck: baseline %s: %s\n",
                 baseline_path.c_str(), error.c_str());
    return 2;
  }
  double tolerance = 0.1;
  if (args.has("tolerance")) {
    try {
      tolerance = std::stod(args.get("tolerance", "0.1"));
    } catch (const std::exception&) {
      std::fprintf(stderr, "benchcheck: --tolerance wants a number\n");
      return 2;
    }
    if (tolerance < 0.0) {
      std::fprintf(stderr, "benchcheck: --tolerance must be >= 0\n");
      return 2;
    }
  }
  return run_file_checks(
      args, "benchcheck", [&baseline, tolerance](const std::string& path) {
        std::string err = check_bench_json(path);
        if (!err.empty()) return err;
        obs::Json doc;
        err = load_json_file(path, doc);
        if (!err.empty()) return err;
        return diff_bench_json(baseline, doc, tolerance);
      });
}

/// Perf trajectory diff between two src-bench-v1 files: per section,
/// compares *throughput* — events/sec when the old section dispatched
/// simulator events, items/sec otherwise — and fails on regressions beyond
/// the tolerance. The complement of `benchcheck --baseline` (which gates
/// the deterministic workload and never looks at speed): benchdiff is the
/// speed gate, run on measurements from the same machine class.
int cmd_benchdiff(const Args& args) {
  if (args.has("help") || args.positionals().size() != 2) {
    std::puts(
        "srcctl benchdiff OLD.json NEW.json [--tolerance F]\n"
        "\n"
        "Compares two src-bench-v1 files section by section on throughput\n"
        "(events/sec for event-based sections, items/sec otherwise) and\n"
        "prints a per-section delta table. Exits 1 when any section\n"
        "regresses by more than --tolerance (relative, default 0.15), or\n"
        "when the section sets differ. Positive deltas are improvements.");
    return args.has("help") ? 0 : 2;
  }
  const std::string old_path = args.positionals()[0];
  const std::string new_path = args.positionals()[1];
  double tolerance = 0.15;
  if (args.has("tolerance")) {
    try {
      tolerance = std::stod(args.get("tolerance", "0.15"));
    } catch (const std::exception&) {
      std::fprintf(stderr, "benchdiff: --tolerance wants a number\n");
      return 2;
    }
    if (tolerance < 0.0) {
      std::fprintf(stderr, "benchdiff: --tolerance must be >= 0\n");
      return 2;
    }
  }

  obs::Json old_doc, new_doc;
  for (const auto& [path, doc] : {std::pair{&old_path, &old_doc},
                                  std::pair{&new_path, &new_doc}}) {
    std::string error = check_bench_json(*path);
    if (error.empty()) error = load_json_file(*path, *doc);
    if (!error.empty()) {
      std::fprintf(stderr, "benchdiff: %s: %s\n", path->c_str(), error.c_str());
      return 2;
    }
  }

  std::map<std::string, const obs::Json*> old_sections;
  for (const obs::Json& section : old_doc.find("sections")->as_array()) {
    old_sections.emplace(section.find("name")->as_string(), &section);
  }

  std::printf("benchdiff %s -> %s (tolerance %.0f%%)\n", old_path.c_str(),
              new_path.c_str(), tolerance * 100.0);
  std::printf("  %-40s %6s %14s %14s %9s\n", "section", "metric", "old/s",
              "new/s", "delta");
  int regressions = 0;
  std::size_t seen = 0;
  for (const obs::Json& section : new_doc.find("sections")->as_array()) {
    const std::string name = section.find("name")->as_string();
    const auto it = old_sections.find(name);
    if (it == old_sections.end()) {
      std::printf("  %-40s new section (not in %s)\n", name.c_str(),
                  old_path.c_str());
      ++regressions;
      continue;
    }
    ++seen;
    // Gate on the section's primary rate: events/sec for simulator-driven
    // sections, items/sec for pure-compute ones (e.g. model inference).
    const bool event_based = it->second->find("events")->as_number() > 0.0;
    const char* key = event_based ? "events_per_sec" : "items_per_sec";
    const double old_rate = it->second->find(key)->as_number();
    const double new_rate = section.find(key)->as_number();
    const double delta =
        old_rate > 0.0 ? (new_rate - old_rate) / old_rate
                       : (new_rate > 0.0 ? 1.0 : 0.0);
    const bool regressed = delta < -tolerance;
    if (regressed) ++regressions;
    std::printf("  %-40s %6s %14.0f %14.0f %+8.1f%%%s\n", name.c_str(),
                event_based ? "events" : "items", old_rate, new_rate,
                delta * 100.0, regressed ? "  REGRESSED" : "");
  }
  if (seen != old_sections.size()) {
    std::printf("  %zu section(s) from %s missing in %s\n",
                old_sections.size() - seen, old_path.c_str(), new_path.c_str());
    ++regressions;
  }
  if (regressions > 0) {
    std::fprintf(stderr, "benchdiff: %d section(s) regressed beyond %.0f%%\n",
                 regressions, tolerance * 100.0);
    return 1;
  }
  std::printf("  ok: no section regressed beyond %.0f%%\n", tolerance * 100.0);
  return 0;
}

/// Validate one `srcctl run --metrics-out` report — "src-run-v1" for star
/// scenarios, "src-pod-run-v1" for pod-grammar runs on the lane engine.
/// Returns an empty string when valid, else a message.
std::string check_run_json(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "cannot open file";
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  obs::Json doc;
  try {
    doc = obs::Json::parse(text);
  } catch (const std::runtime_error& err) {
    return err.what();
  }
  if (!doc.is_object()) return "top level is not an object";
  const obs::Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      (schema->as_string() != "src-run-v1" &&
       schema->as_string() != "src-pod-run-v1")) {
    return "missing or unexpected \"schema\" (want \"src-run-v1\" or "
           "\"src-pod-run-v1\")";
  }
  const bool pod_report = schema->as_string() == "src-pod-run-v1";
  const obs::Json* name = doc.find("scenario");
  if (name == nullptr || !name->is_string() || name->as_string().empty()) {
    return "missing \"scenario\" name";
  }
  const std::vector<const char*> numeric_keys =
      pod_report
          ? std::vector<const char*>{"read_gbps", "total_pauses",
                                     "reads_completed", "writes_completed",
                                     "events_executed", "cross_shard_messages"}
          : std::vector<const char*>{"read_gbps", "write_gbps",
                                     "aggregate_gbps", "total_pauses",
                                     "reads_completed", "writes_completed",
                                     "final_weight_ratio"};
  for (const char* key : numeric_keys) {
    const obs::Json* value = doc.find(key);
    if (value == nullptr || !value->is_number() || value->as_number() < 0.0) {
      return std::string("missing or negative \"") + key + "\"";
    }
  }
  const obs::Json* completed = doc.find("completed");
  if (completed == nullptr || completed->type() != obs::Json::Type::kBool) {
    return "missing boolean \"completed\"";
  }
  const obs::Json* jain = doc.find("read_jain_index");
  if (jain == nullptr || !jain->is_number() || jain->as_number() < 0.0 ||
      jain->as_number() > 1.0) {
    return "missing \"read_jain_index\" or outside [0, 1]";
  }
  const std::vector<const char*> array_keys =
      pod_report
          ? std::vector<const char*>{"per_initiator_read_bytes"}
          : std::vector<const char*>{"per_initiator_read_gbps", "read_shares"};
  for (const char* key : array_keys) {
    const obs::Json* list = doc.find(key);
    if (list == nullptr || !list->is_array()) {
      return std::string("missing \"") + key + "\" array";
    }
    for (const obs::Json& value : list->as_array()) {
      if (!value.is_number() || value.as_number() < 0.0) {
        return std::string(key) + ": not all entries are non-negative numbers";
      }
    }
  }
  const obs::Json* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return "missing \"metrics\" object";
  }
  const obs::Json* counters = metrics->find("counters");
  if (counters == nullptr || !counters->is_object()) {
    return "metrics: missing \"counters\" object";
  }
  for (const auto& [counter, value] : counters->as_object()) {
    if (!value.is_number() || value.as_number() < 0.0) {
      return "metrics.counters." + counter + ": not a non-negative number";
    }
  }
  return "";
}

int cmd_metricscheck(const Args& args) {
  if (args.has("help") || args.positionals().empty()) {
    std::puts("srcctl metricscheck report.json [more.json ...]\n"
              "\n"
              "Validates `srcctl run --metrics-out` reports against the\n"
              "src-run-v1 schema (src-pod-run-v1 for pod-grammar runs);\n"
              "exits non-zero if any file is malformed.");
    return args.has("help") ? 0 : 2;
  }
  return run_file_checks(args, "metricscheck", check_run_json);
}

/// Write a scenario manifest (to_json_text already ends with a newline).
void write_manifest(const std::string& path,
                    const scenario::ScenarioSpec& spec) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  out << scenario::to_json_text(spec);
}

/// Resolve `--base` for chaos commands: a preset name, or (when it looks
/// like a path) a manifest file. Defaults to the stock chaos base.
bool load_chaos_base(const Args& args, scenario::ScenarioSpec& spec) {
  const std::string base = args.get("base", "");
  if (base.empty()) {
    spec = chaos::default_base_spec();
    return true;
  }
  try {
    if (base.find('.') != std::string::npos ||
        base.find('/') != std::string::npos) {
      spec = scenario::load_scenario_file(base);
    } else {
      spec = scenario::preset_spec(base);
    }
  } catch (const std::exception& err) {
    std::fprintf(stderr, "%s\n", err.what());
    return false;
  }
  return true;
}

/// Prepare the model every chaos run shares: --model loads a file, else an
/// SRC-enabled spec trains once via its tpm source. `tpm` may stay null
/// (DCQCN-only base). Returns false on a load failure.
bool chaos_tpm(const Args& args, const scenario::ScenarioSpec& spec,
               core::Tpm& loaded, std::shared_ptr<const core::Tpm>& owned,
               const core::Tpm*& tpm) {
  tpm = nullptr;
  try {
    if (args.has("model")) {
      loaded = core::Tpm::load_file(args.get("model", ""));
      tpm = &loaded;
      std::printf("loaded TPM from %s\n", args.get("model", "").c_str());
    } else if (spec.src.enabled && spec.src.tpm.source != "none") {
      std::printf("training TPM for %s (use --model file.tpm to skip)...\n",
                  spec.ssd.name.c_str());
      owned = scenario::tpm_registry().at(spec.src.tpm.source)(spec.src.tpm,
                                                               spec.ssd);
      tpm = owned.get();
    }
  } catch (const std::exception& err) {
    std::fprintf(stderr, "%s\n", err.what());
    return false;
  }
  return true;
}

int chaos_run(const Args& args) {
  chaos::CampaignSpec campaign;
  if (!load_chaos_base(args, campaign.base)) return 2;
  campaign.trials = args.get_u64("trials", campaign.trials);
  campaign.seed = args.get_u64("seed", campaign.seed);
  campaign.sampler.link_downs = args.has("link-downs");
  const std::size_t jobs = args.get_u64("jobs", 0);
  const std::string out_dir = args.get("out-dir", "");
  if (!out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(),
                   ec.message().c_str());
      return 1;
    }
  }

  core::Tpm loaded;
  std::shared_ptr<const core::Tpm> owned;
  const core::Tpm* tpm = nullptr;
  if (!chaos_tpm(args, campaign.base, loaded, owned, tpm)) return 1;

  std::printf("chaos: %zu trials over '%s' (campaign seed %llu)...\n",
              campaign.trials, campaign.base.name.c_str(),
              static_cast<unsigned long long>(campaign.seed));
  const chaos::CampaignResult result = chaos::run_campaign(campaign, jobs, tpm);

  std::vector<chaos::FailureArtifacts> artifacts;
  for (const chaos::TrialFailure& failure : result.failures) {
    chaos::FailureArtifacts art;
    const chaos::TrialOutcome& o = failure.outcome;
    std::printf("trial %zu FAILED: %zu violation(s), first [%s], digest %s, "
                "replay %s\n",
                o.index, o.violations.size(),
                o.violations.front().checker.c_str(),
                chaos::digest_hex(o.digest).c_str(),
                failure.deterministic ? "bit-identical" : "NONDETERMINISTIC");
    if (!out_dir.empty()) {
      art.reproducer_path =
          out_dir + "/trial-" + std::to_string(o.index) + ".json";
      write_manifest(art.reproducer_path, failure.spec);
    }
    if (!args.has("no-shrink") && failure.deterministic) {
      chaos::ShrinkOptions shrink_options;
      shrink_options.max_runs =
          args.get_u64("shrink-budget", shrink_options.max_runs);
      art.shrink = chaos::shrink(failure.spec, tpm, shrink_options);
      art.shrunk = art.shrink.reproduced;
      if (art.shrunk) {
        std::printf("  shrunk [%s]: %zu -> %zu fault entries in %zu runs\n",
                    art.shrink.checker.c_str(), art.shrink.faults_before,
                    art.shrink.faults_after, art.shrink.runs);
        if (!out_dir.empty()) {
          art.minimized_path =
              out_dir + "/trial-" + std::to_string(o.index) + "-min.json";
          write_manifest(art.minimized_path, art.shrink.minimal);
        }
      }
    }
    artifacts.push_back(std::move(art));
  }

  if (!out_dir.empty()) {
    const std::string report_path = out_dir + "/chaos-report.json";
    write_text_file(report_path,
                    chaos::campaign_report_json(campaign, result, artifacts)
                        .dump(2));
    std::printf("report written to %s\n", report_path.c_str());
  }
  std::printf("chaos: %zu/%zu trials clean, %zu failing\n",
              result.clean_trials, result.trials, result.failures.size());
  return result.failures.empty() ? 0 : 3;
}

int chaos_replay(const Args& args, const std::string& path) {
  scenario::ScenarioSpec spec;
  try {
    spec = scenario::load_scenario_file(path);
  } catch (const std::runtime_error& err) {
    std::fprintf(stderr, "%s\n", err.what());
    return 2;
  }
  spec.verify.enabled = true;

  core::Tpm loaded;
  std::shared_ptr<const core::Tpm> owned;
  const core::Tpm* tpm = nullptr;
  if (!chaos_tpm(args, spec, loaded, owned, tpm)) return 1;

  const chaos::RunOutcome first = chaos::run_verified(spec, tpm);
  const chaos::RunOutcome second = chaos::run_verified(spec, tpm);
  for (const verify::Violation& v : first.report->violations) {
    std::printf("verify: [%s] t=%lluns %s\n", v.checker.c_str(),
                static_cast<unsigned long long>(v.when), v.detail.c_str());
  }
  const bool deterministic = first.digest == second.digest;
  std::printf("%s: %zu violation(s), digest %s, replay %s -> %s\n",
              spec.name.c_str(), first.report->violations.size(),
              chaos::digest_hex(first.digest).c_str(),
              chaos::digest_hex(second.digest).c_str(),
              deterministic ? "bit-identical" : "NONDETERMINISTIC");
  if (!deterministic) return 1;
  return first.report->violations.empty() ? 0 : 3;
}

int chaos_shrink(const Args& args, const std::string& path) {
  scenario::ScenarioSpec spec;
  try {
    spec = scenario::load_scenario_file(path);
  } catch (const std::runtime_error& err) {
    std::fprintf(stderr, "%s\n", err.what());
    return 2;
  }

  core::Tpm loaded;
  std::shared_ptr<const core::Tpm> owned;
  const core::Tpm* tpm = nullptr;
  if (!chaos_tpm(args, spec, loaded, owned, tpm)) return 1;

  chaos::ShrinkOptions options;
  options.max_runs = args.get_u64("budget", options.max_runs);
  const chaos::ShrinkResult result = chaos::shrink(spec, tpm, options);
  if (!result.reproduced) {
    std::fprintf(stderr,
                 "shrink: %s does not trip any invariant checker (ran with "
                 "verification forced on)\n",
                 path.c_str());
    return 1;
  }
  const std::string out = args.get("out", "min.json");
  write_manifest(out, result.minimal);
  std::printf("shrunk [%s]: %zu -> %zu fault entries in %zu runs, digest %s "
              "-> %s\n",
              result.checker.c_str(), result.faults_before,
              result.faults_after, result.runs,
              chaos::digest_hex(result.digest).c_str(), out.c_str());
  return 0;
}

int cmd_chaos(const Args& args) {
  if (args.has("help") || args.positionals().empty()) {
    std::puts(
        "srcctl chaos run [--base preset|file.json] [--trials 200] [--seed 1]\n"
        "                 [--jobs N] [--out-dir DIR] [--no-shrink]\n"
        "                 [--shrink-budget 150] [--link-downs]\n"
        "                 [--model file.tpm]\n"
        "srcctl chaos replay <manifest.json> [--model file.tpm]\n"
        "srcctl chaos shrink <failing.json> [-o|--out min.json] [--budget 150]\n"
        "                 [--model file.tpm]\n"
        "\n"
        "run    samples a randomized fault plan per trial over the base\n"
        "       scenario and runs every trial with all invariant checkers\n"
        "       armed; failing trials are replayed (determinism proof),\n"
        "       shrunk to minimal reproducers, and recorded in an\n"
        "       src-chaos-v1 report under --out-dir.\n"
        "replay runs a manifest twice with verification forced on and\n"
        "       compares the outcome digests bit for bit.\n"
        "shrink reduces a failing manifest to a minimal scenario that still\n"
        "       trips the same checker, written as a runnable manifest.\n"
        "\n"
        "Exit codes: 0 clean, 1 failure (nondeterminism, nothing to shrink),\n"
        "2 usage error, 3 invariant violations found.");
    return args.has("help") ? 0 : 2;
  }
  const std::string& sub = args.positionals().front();
  if (sub == "run") {
    if (args.positionals().size() != 1) {
      std::fprintf(stderr, "chaos run: unexpected argument '%s'\n",
                   args.positionals()[1].c_str());
      return 2;
    }
    return chaos_run(args);
  }
  if (sub == "replay" || sub == "shrink") {
    if (args.positionals().size() != 2) {
      std::fprintf(stderr, "chaos %s: expected exactly one manifest file\n",
                   sub.c_str());
      return 2;
    }
    return sub == "replay" ? chaos_replay(args, args.positionals()[1])
                           : chaos_shrink(args, args.positionals()[1]);
  }
  std::fprintf(stderr, "chaos: unknown subcommand '%s'\n", sub.c_str());
  return 2;
}

/// `srcctl lint` — run the srclint binary that ships beside this
/// executable, forwarding all flags and files verbatim (srclint owns its
/// own CLI; see tools/srclint). Conveniences added on top:
///   - when neither --root nor explicit files are given, the repository
///     root is autodetected by walking up from the current directory
///     (marker: a tools/srclint directory next to src/),
///   - the committed baseline (tools/srclint/baseline.txt) is applied
///     automatically in that mode unless the caller names one.
/// The linter's exit code is propagated unchanged (0/1/2).
int cmd_lint(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::vector<std::string> forward(argv + 2, argv + argc);

  static const std::vector<std::string> kValueFlags = {
      "--root",         "--rules",          "--cxx",       "--jobs",
      "--format",       "--baseline",       "--write-baseline",
      "--sarif-out",    "--shared-inventory", "--fail-shared-under"};
  bool has_root = false, has_baseline = false, has_files = false;
  for (std::size_t i = 0; i < forward.size(); ++i) {
    const std::string& arg = forward[i];
    if (arg == "--help") {
      std::puts(
          "srcctl lint [srclint flags] [files...]\n"
          "  with no --root and no files, lints the enclosing repository\n"
          "  against its committed baseline; otherwise forwards verbatim.\n"
          "  srclint flags: --rules R1,.. --format text|json|sarif\n"
          "  --baseline F --write-baseline F --sarif-out F\n"
          "  --shared-inventory F --fail-shared-under PREFIX\n"
          "  --no-header-check --cxx CC --jobs N --list");
      return 0;
    }
    if (arg == "--root") has_root = true;
    if (arg == "--baseline" || arg == "--write-baseline") has_baseline = true;
    if (arg.rfind("--", 0) == 0) {
      // Skip this flag's value so it is not mistaken for a file.
      if (std::find(kValueFlags.begin(), kValueFlags.end(), arg) !=
          kValueFlags.end()) {
        ++i;
      }
      continue;
    }
    has_files = true;
  }

  if (!has_root && !has_files) {
    fs::path probe = fs::current_path();
    fs::path root;
    for (; !probe.empty(); probe = probe.parent_path()) {
      if (fs::is_directory(probe / "tools" / "srclint") &&
          fs::is_directory(probe / "src")) {
        root = probe;
        break;
      }
      if (probe == probe.root_path()) break;
    }
    if (root.empty()) {
      std::fprintf(stderr,
                   "srcctl lint: not inside the repository (no tools/srclint "
                   "found walking up from the current directory); pass "
                   "--root or explicit files\n");
      return 2;
    }
    forward.insert(forward.begin(), {"--root", root.string()});
    const fs::path baseline = root / "tools" / "srclint" / "baseline.txt";
    if (!has_baseline && fs::exists(baseline)) {
      forward.push_back("--baseline");
      forward.push_back(baseline.string());
    }
  }

  // The srclint binary is built into the same directory as srcctl.
  std::error_code ec;
  fs::path self = fs::read_symlink("/proc/self/exe", ec);
  if (ec) self = fs::absolute(argv[0], ec);
  const fs::path srclint = self.parent_path() / "srclint";
  if (!fs::exists(srclint)) {
    std::fprintf(stderr, "srcctl lint: srclint binary not found at '%s' "
                 "(build the `srclint` target)\n", srclint.c_str());
    return 2;
  }

  std::vector<std::string> exec_args;
  exec_args.push_back(srclint.string());
  exec_args.insert(exec_args.end(), forward.begin(), forward.end());
  std::vector<char*> exec_argv;
  exec_argv.reserve(exec_args.size() + 1);
  for (std::string& a : exec_args) exec_argv.push_back(a.data());
  exec_argv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("srcctl lint: fork");
    return 2;
  }
  if (pid == 0) {
    execv(exec_argv[0], exec_argv.data());
    std::perror("srcctl lint: execv");
    _exit(127);
  }
  int status = 0;
  if (waitpid(pid, &status, 0) < 0) {
    std::perror("srcctl lint: waitpid");
    return 2;
  }
  return WIFEXITED(status) ? WEXITSTATUS(status) : 2;
}

/// The subcommand table: name, one-line summary for the generated help,
/// handler, and whether positional operands are accepted (commands that
/// take only flags reject strays up front). Forwarding commands (lint)
/// set `raw_handler` instead and receive untouched argc/argv.
struct Command {
  const char* name;
  const char* summary;
  int (*handler)(const Args&) = nullptr;
  bool takes_positionals = false;
  int (*raw_handler)(int, char**) = nullptr;
};

const Command kCommands[] = {
    {"sweep", "fig-5-style weight-ratio sweep on one workload", cmd_sweep},
    {"experiment", "DCQCN-only vs DCQCN-SRC on an evaluation preset",
     cmd_experiment},
    {"run", "run a scenario manifest (src-scenario-v1 JSON)", cmd_run, true},
    {"scenarios", "list the built-in scenario presets / dump them as JSON",
     cmd_scenarios, true},
    {"trace", "run a preset with tracing on; emit Chrome trace JSON",
     cmd_trace},
    {"tpm", "train a throughput prediction model and inspect it", cmd_tpm},
    {"trace-gen", "generate a CSV block trace (micro / vdi / cbs)",
     cmd_trace_gen},
    {"trace-stats", "summarize a CSV block trace", cmd_trace_stats},
    {"replay", "replay a CSV trace against a simulated SSD", cmd_replay},
    {"faults", "canned fault-injection scenario with timeout/retry",
     cmd_faults},
    {"chaos", "randomized fault campaigns with invariant verification",
     cmd_chaos, true},
    {"benchcheck", "validate BENCH_*.json files against src-bench-v1",
     cmd_benchcheck, true},
    {"benchdiff", "per-section throughput delta between two BENCH_*.json",
     cmd_benchdiff, true},
    {"metricscheck", "validate srcctl run reports (src-run-v1 / src-pod-run-v1)",
     cmd_metricscheck, true},
    {"lint", "run the srclint determinism & invariant linter (R1-R9)",
     nullptr, true, cmd_lint},
};

int print_usage(std::FILE* out) {
  std::fprintf(out, "usage: srcctl <command> [--flags]\n\ncommands:\n");
  for (const Command& command : kCommands) {
    std::fprintf(out, "  %-12s %s\n", command.name, command.summary);
  }
  std::fprintf(out, "\nrun `srcctl <command> --help` for per-command flags\n");
  return out == stdout ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "";
  if (name.empty() || name == "help" || name == "--help") {
    return print_usage(name.empty() ? stderr : stdout);
  }
  for (const Command& command : kCommands) {
    if (name != command.name) continue;
    if (command.raw_handler != nullptr) return command.raw_handler(argc, argv);
    const Args args(argc, argv, 2);
    if (!command.takes_positionals && !args.positionals().empty()) {
      std::fprintf(stderr, "%s: unexpected argument '%s'\n", command.name,
                   args.positionals().front().c_str());
      return 2;
    }
    return command.handler(args);
  }
  std::fprintf(stderr, "srcctl: unknown command '%s'\n\n", name.c_str());
  return print_usage(stderr);
}
